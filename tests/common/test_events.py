"""Tests for the discrete-event kernel."""

import pytest

from repro.common.events import EventQueue


class TestEventQueue:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(5, lambda: order.append("b"))
        queue.schedule(1, lambda: order.append("a"))
        queue.schedule(9, lambda: order.append("c"))
        while queue.run_next():
            pass
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        queue = EventQueue()
        order = []
        for tag in "abc":
            queue.schedule(3, lambda t=tag: order.append(t))
        while queue.run_next():
            pass
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        queue = EventQueue()
        seen = []
        queue.schedule(4, lambda: seen.append(queue.now))
        queue.run_next()
        assert seen == [4]
        assert queue.now == 4

    def test_zero_delay_runs_after_current(self):
        queue = EventQueue()
        order = []

        def outer():
            queue.schedule(0, lambda: order.append("inner"))
            order.append("outer")

        queue.schedule(1, outer)
        while queue.run_next():
            pass
        assert order == ["outer", "inner"]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(1, lambda: fired.append(1))
        event.cancel()
        assert not queue.run_next() or not fired
        assert fired == []

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-1, lambda: None)

    def test_schedule_at_absolute(self):
        queue = EventQueue()
        seen = []
        queue.schedule(2, lambda: queue.schedule_at(10, lambda: seen.append(queue.now)))
        while queue.run_next():
            pass
        assert seen == [10]

    def test_run_until_advances_clock(self):
        queue = EventQueue()
        queue.run_until(42)
        assert queue.now == 42

    def test_events_scheduled_during_run(self):
        queue = EventQueue()
        order = []

        def chain(n):
            order.append(n)
            if n < 3:
                queue.schedule(1, lambda: chain(n + 1))

        queue.schedule(1, lambda: chain(0))
        while queue.run_next():
            pass
        assert order == [0, 1, 2, 3]

    def test_len_counts_pending(self):
        queue = EventQueue()
        queue.schedule(1, lambda: None)
        queue.schedule(2, lambda: None)
        assert len(queue) == 2


class TestFastPath:
    """post/post_at: the no-handle fast path used by the simulator."""

    def test_post_runs_in_order(self):
        queue = EventQueue()
        order = []
        queue.post(5, lambda: order.append("b"))
        queue.post(1, lambda: order.append("a"))
        while queue.run_next():
            pass
        assert order == ["a", "b"]

    def test_post_and_schedule_share_tiebreak_counter(self):
        queue = EventQueue()
        order = []
        queue.post(3, lambda: order.append("posted-first"))
        queue.schedule(3, lambda: order.append("scheduled-second"))
        queue.post(3, lambda: order.append("posted-third"))
        while queue.run_next():
            pass
        assert order == ["posted-first", "scheduled-second", "posted-third"]

    def test_post_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.post(-1, lambda: None)

    def test_post_at_absolute(self):
        queue = EventQueue()
        seen = []
        queue.post(2, lambda: queue.post_at(10, lambda: seen.append(queue.now)))
        while queue.run_next():
            pass
        assert seen == [10]

    def test_cancelled_schedule_between_posts_skipped(self):
        queue = EventQueue()
        order = []
        queue.post(1, lambda: order.append("a"))
        event = queue.schedule(1, lambda: order.append("cancelled"))
        queue.post(1, lambda: order.append("b"))
        event.cancel()
        while queue.run_next():
            pass
        assert order == ["a", "b"]


class TestRunCycle:
    def test_drains_one_cycle_batch(self):
        queue = EventQueue()
        order = []
        queue.post(2, lambda: order.append("x"))
        queue.post(2, lambda: order.append("y"))
        queue.post(5, lambda: order.append("later"))
        assert queue.run_cycle() == 2
        assert order == ["x", "y"]
        assert queue.now == 2

    def test_includes_zero_delay_events_added_during_batch(self):
        queue = EventQueue()
        order = []

        def outer():
            order.append("outer")
            queue.post(0, lambda: order.append("inner"))

        queue.post(3, outer)
        assert queue.run_cycle() == 3
        assert order == ["outer", "inner"]

    def test_empty_queue_returns_none(self):
        queue = EventQueue()
        assert queue.run_cycle() is None

    def test_matches_run_next_ordering(self):
        def build():
            queue = EventQueue()
            order = []
            for tag in "abc":
                queue.post(1, lambda t=tag: order.append(t))
            queue.post(2, lambda: order.append("d"))
            return queue, order

        q1, o1 = build()
        while q1.run_next():
            pass
        q2, o2 = build()
        while q2.run_cycle() is not None:
            pass
        assert o1 == o2


class TestMicrotasks:
    def test_call_soon_runs_before_later_posts(self):
        queue = EventQueue()
        order = []
        queue.post(0, lambda: order.append("event"))
        queue.run_next()  # now inside cycle 0's wake; queue idle again

        def event():
            assert queue.idle_now()
            queue.call_soon(lambda: order.append("micro"))
            queue.post(0, lambda: order.append("posted-after"))

        queue.post(0, event)
        while queue.run_next():
            pass
        assert order == ["event", "micro", "posted-after"]

    def test_call_soon_matches_post_zero_exactly(self):
        def run(use_call_soon):
            queue = EventQueue()
            order = []

            def complete(tag):
                if use_call_soon and queue.idle_now():
                    queue.call_soon(lambda: order.append(tag))
                else:
                    queue.post(0, lambda: order.append(tag))

            def event():
                complete("a")
                queue.post(0, lambda: order.append("x"))
                complete("b")
                queue.post(1, lambda: order.append("next-cycle"))

            queue.post(3, event)
            while queue.run_next():
                pass
            return order

        assert run(True) == run(False) == ["a", "x", "b", "next-cycle"]

    def test_idle_now_false_while_microtask_pending(self):
        queue = EventQueue()
        queue.call_soon(lambda: None)
        assert not queue.idle_now()
        assert len(queue) == 1
        queue.run_next()
        assert queue.idle_now()
        assert len(queue) == 0

    def test_chained_microtasks_fifo(self):
        queue = EventQueue()
        order = []

        def chain(n):
            order.append(n)
            if n < 4:
                queue.call_soon(lambda: chain(n + 1))

        queue.call_soon(lambda: chain(0))
        while queue.run_next():
            pass
        assert order == [0, 1, 2, 3, 4]

    def test_run_cycle_drains_microtasks_first(self):
        queue = EventQueue()
        order = []
        queue.call_soon(lambda: order.append("micro"))
        queue.post(0, lambda: order.append("ring"))
        assert queue.run_cycle() == 0
        assert order == ["micro", "ring"]

    def test_run_until_drains_microtasks(self):
        queue = EventQueue()
        order = []
        queue.call_soon(lambda: order.append("micro"))
        queue.post(2, lambda: order.append("later"))
        queue.run_until(1)
        assert order == ["micro"]
        assert queue.now == 1
