"""Concurrency hardening of the disk cache.

Regression tests for the three bugs the serve daemon exposed:

1. the corrupt-entry unlink race — a reader observing a torn file must
   not delete the valid entry a concurrent ``put`` just replaced it
   with;
2. leaked ``.tmp`` files from writers killed between ``mkstemp`` and
   ``os.replace`` — reaped by ``clear()`` and opportunistically on
   ``put``;
3. the cold-key stampede — N processes racing the same key elect one
   simulator under the advisory ``flock`` sidecar.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import time

import pytest

from repro.common.cache import TMP_STALE_SECONDS, ResultCache

KEY = "ab" + "0" * 62
OTHER = "ab" + "1" * 62  # same fanout dir as KEY


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _write_corrupt(cache: ResultCache, key: str) -> pathlib.Path:
    path = cache.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{ torn json", encoding="utf-8")
    return path


class TestCorruptEntryRace:
    def test_torn_entry_reads_as_miss_and_is_dropped(self, cache):
        path = _write_corrupt(cache, KEY)
        assert cache.get(KEY) is None
        assert not path.exists()

    def test_concurrent_replacement_survives_drop(self, cache):
        """The race itself, deterministically interleaved.

        Reader observes the torn file (stat + content), a concurrent
        ``put`` atomically replaces it with valid data, and only then
        does the reader attempt its cleanup unlink.  The old code
        unlinked blindly and destroyed the fresh entry.
        """
        path = _write_corrupt(cache, KEY)
        observed = os.stat(path)  # what get() saw before the parse failed
        cache.put(KEY, {"fresh": True})  # the concurrent writer wins the race
        ResultCache._unlink_observed(path, observed)  # reader's cleanup
        assert cache.get(KEY) == {"fresh": True}

    def test_unlink_guard_drops_the_observed_version(self, cache):
        path = _write_corrupt(cache, KEY)
        observed = os.stat(path)
        ResultCache._unlink_observed(path, observed)
        assert not path.exists()

    def test_valid_entry_untouched(self, cache):
        cache.put(KEY, {"v": 1})
        assert cache.get(KEY) == {"v": 1}
        assert cache.path_for(KEY).exists()


class TestTmpReaping:
    def _orphan(self, cache: ResultCache, age: float) -> pathlib.Path:
        fanout = cache.path_for(KEY).parent
        fanout.mkdir(parents=True, exist_ok=True)
        orphan = fanout / f".{KEY[:8]}-orphan.tmp"
        orphan.write_text("half a summ", encoding="utf-8")
        stamp = time.time() - age
        os.utime(orphan, (stamp, stamp))
        return orphan

    def test_clear_reaps_tmp_files(self, cache):
        orphan = self._orphan(cache, age=0.0)  # fresh: clear reaps anyway
        cache.put(KEY, {"v": 1})
        assert cache.clear() == 1  # tmp files don't count as entries
        assert not orphan.exists()
        assert cache.get(KEY) is None

    def test_clear_reaps_lock_sidecars(self, cache):
        with cache.locked(KEY):
            pass
        assert cache.lock_path(KEY).exists()
        cache.clear()
        assert not cache.lock_path(KEY).exists()

    def test_put_reaps_stale_tmp_in_same_fanout(self, cache):
        orphan = self._orphan(cache, age=TMP_STALE_SECONDS + 60)
        cache.put(OTHER, {"v": 2})
        assert not orphan.exists()
        assert cache.get(OTHER) == {"v": 2}

    def test_put_spares_fresh_tmp(self, cache):
        """A live writer's in-flight tmp file must never be reaped."""
        inflight = self._orphan(cache, age=0.0)
        cache.put(OTHER, {"v": 2})
        assert inflight.exists()

    def test_reap_tmp_counts(self, cache):
        self._orphan(cache, age=TMP_STALE_SECONDS + 60)
        assert cache.reap_tmp() == 1
        assert cache.reap_tmp() == 0


class TestLockedPrimitive:
    def test_lock_held_and_released(self, cache):
        with cache.locked(KEY) as held:
            assert held
        with cache.locked(KEY) as held:  # not still held by the dead ctx
            assert held

    def test_degrades_without_lock_on_unusable_root(self, tmp_path):
        # A file where the cache root should be: every mkdir/open under
        # it fails with OSError (chmod tricks don't work when the test
        # suite runs as root).
        root = tmp_path / "not-a-dir"
        root.write_text("", encoding="utf-8")
        cache = ResultCache(root)
        with cache.locked(KEY) as held:
            assert not held  # degraded, but usable


# ----------------------------------------------------------------------
# multi-process stampede


def _stampede_worker(root: str, key: str, log: str, barrier) -> None:
    """Race to fill ``key``: compute only if still missing under the lock."""
    cache = ResultCache(pathlib.Path(root))
    barrier.wait()  # maximize the collision
    if cache.get(key) is not None:
        return
    with cache.locked(key):
        if cache.get(key) is not None:
            return  # the winner filled it while we blocked
        # "simulate": record that this process did the expensive work.
        with open(log, "a", encoding="utf-8") as handle:
            handle.write(f"{os.getpid()}\n")
        time.sleep(0.05)  # hold the race window open
        cache.put(key, {"by": os.getpid()})


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="stampede test forks",
)
def test_multiprocess_stampede_simulates_once(tmp_path):
    """N processes put/get the same cold key: exactly one computes."""
    root = tmp_path / "cache"
    log = tmp_path / "computed.log"
    log.touch()
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(4)
    procs = [
        ctx.Process(
            target=_stampede_worker, args=(str(root), KEY, str(log), barrier)
        )
        for _ in range(4)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=30)
        assert proc.exitcode == 0
    computed = log.read_text(encoding="utf-8").splitlines()
    assert len(computed) == 1, f"expected one computation, got {computed}"
    payload = ResultCache(root).get(KEY)
    assert payload is not None and payload["by"] == int(computed[0])


def _benchmark_worker(log: str, barrier, seed: int) -> None:
    from repro.analysis import runner as _runner
    from repro.analysis.runner import ExperimentScale, clear_cache, run_benchmark
    from repro.core.policy import FREE_ATOMICS_FWD

    clear_cache()  # drop the memo inherited over fork; keep the disk layer
    original = _runner.run_workload

    def counting_run_workload(*args, **kwargs):
        with open(log, "a", encoding="utf-8") as handle:
            handle.write(f"{os.getpid()}\n")
        return original(*args, **kwargs)

    _runner.run_workload = counting_run_workload
    barrier.wait()
    scale = ExperimentScale(num_threads=2, instructions_per_thread=120, seed=seed)
    summary = run_benchmark("AS", FREE_ATOMICS_FWD, scale)
    assert summary.cycles > 0


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="stampede test forks",
)
def test_run_benchmark_stampede_single_flight(tmp_path, monkeypatch):
    """The full stack: N processes resolve the same cold point once."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    log = tmp_path / "simulated.log"
    log.touch()
    seed = int.from_bytes(os.urandom(2), "big")  # unique cold point
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(3)
    procs = [
        ctx.Process(target=_benchmark_worker, args=(str(log), barrier, seed))
        for _ in range(3)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0
    simulated = log.read_text(encoding="utf-8").splitlines()
    assert len(simulated) == 1, f"expected one simulation, got {simulated}"
