"""Tests for the persistent on-disk result cache."""

import json

import pytest

from repro.common.cache import (
    CACHE_DIR_ENV,
    CACHE_TOGGLE_ENV,
    ResultCache,
    cache_enabled,
    content_key,
    default_cache_dir,
)


class TestContentKey:
    def test_stable_across_key_order(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert content_key({"a": 1}) != content_key({"a": 2})

    def test_hex_sha256(self):
        key = content_key({"x": 1})
        assert len(key) == 64
        int(key, 16)  # raises if not hex


class TestEnv:
    def test_default_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_TOGGLE_ENV, raising=False)
        assert cache_enabled()

    @pytest.mark.parametrize("value", ["off", "0", "no", "OFF", "False"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(CACHE_TOGGLE_ENV, value)
        assert not cache_enabled()


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key({"point": 1})
        assert cache.get(key) is None
        cache.put(key, {"cycles": 42})
        assert cache.get(key) == {"cycles": 42}

    def test_atomic_write_no_tmp_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key({"point": 2})
        cache.put(key, {"v": 1})
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []

    def test_corrupt_entry_is_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key({"point": 3})
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{truncated")
        assert cache.get(key) is None
        assert not path.exists()

    def test_non_dict_payload_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key({"point": 4})
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps([1, 2, 3]))
        assert cache.get(key) is None

    def test_clear_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(content_key({"i": i}), {"i": i})
        assert cache.clear() == 3
        assert cache.clear() == 0

    def test_unwritable_root_degrades_to_noop(self, tmp_path):
        missing = tmp_path / "file-not-dir"
        missing.write_text("x")  # a file where the dir should be
        cache = ResultCache(missing / "sub")
        cache.put(content_key({"p": 1}), {"v": 1})  # must not raise
        assert cache.get(content_key({"p": 1})) is None
