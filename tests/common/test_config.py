"""Tests for configuration dataclasses and presets."""

import dataclasses

import pytest

from repro.common.config import (
    CacheConfig,
    CoreConfig,
    DirectoryConfig,
    FreeAtomicsConfig,
    SystemConfig,
    icelake_config,
    skylake_config,
)
from repro.common.errors import ConfigError


class TestCacheConfig:
    def test_table1_l1d_geometry(self):
        config = icelake_config().memory.l1d
        assert config.size_bytes == 48 * 1024
        assert config.ways == 12
        assert config.num_sets == 64
        assert config.hit_latency == 4

    def test_num_lines(self):
        config = CacheConfig("X", 64 * 1024, 8, 1, 2)
        assert config.num_lines == 1024
        assert config.num_sets == 128

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", 1000, 3, 1, 1)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", 1024, 2, -1, 1)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", 1024, 0, 1, 1)


class TestCoreConfig:
    def test_icelake_rob(self):
        assert icelake_config().core.rob_entries == 352

    def test_skylake_rob(self):
        assert skylake_config().core.rob_entries == 224

    def test_rob_must_cover_queues(self):
        with pytest.raises(ConfigError):
            CoreConfig(rob_entries=16, lq_entries=32)

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigError):
            CoreConfig(fetch_width=0)


class TestFreeAtomicsConfig:
    def test_paper_defaults(self):
        config = FreeAtomicsConfig()
        assert config.aq_entries == 4
        assert config.watchdog_cycles == 10_000
        assert config.max_forward_chain == 32

    def test_rejects_zero_aq(self):
        with pytest.raises(ConfigError):
            FreeAtomicsConfig(aq_entries=0)

    def test_rejects_zero_chain(self):
        with pytest.raises(ConfigError):
            FreeAtomicsConfig(max_forward_chain=0)


class TestSystemConfig:
    def test_aq_must_not_exceed_l1_ways(self):
        # Paper 4.1.3: AQ strictly larger than associativity can lock a
        # whole set; the config guards the safe regime by default.
        base = icelake_config()
        with pytest.raises(ConfigError):
            SystemConfig(
                num_cores=1,
                memory=base.memory,
                free_atomics=FreeAtomicsConfig(aq_entries=13),
            )

    def test_replace_round_trip(self):
        config = icelake_config(num_cores=4)
        changed = config.replace(num_cores=8)
        assert changed.num_cores == 8
        assert changed.core == config.core

    def test_presets_accept_overrides(self):
        config = skylake_config(num_cores=2, max_cycles=99)
        assert config.max_cycles == 99

    def test_directory_validation(self):
        with pytest.raises(ConfigError):
            DirectoryConfig(coverage=0.0)


class TestFrozen:
    def test_configs_are_immutable(self):
        config = icelake_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.num_cores = 3  # type: ignore[misc]
