"""Tests for the energy model."""

from repro.core.policy import BASELINE, FREE_ATOMICS_FWD
from repro.energy.model import EnergyBreakdown, EnergyModel, EnergyParams
from repro.system.simulator import run_workload
from tests.conftest import counter_workload, small_system_config


def run(policy):
    return run_workload(
        counter_workload(2, 40), policy=policy, config=small_system_config(2)
    )


class TestEnergyModel:
    def test_breakdown_positive_components(self):
        breakdown = EnergyModel().breakdown(run(BASELINE))
        assert breakdown.dynamic_pj > 0
        assert breakdown.static_pj > 0
        assert breakdown.total_pj == breakdown.dynamic_pj + breakdown.static_pj
        for name in ("issue", "commit", "l1", "network"):
            assert breakdown.components[name] > 0, name

    def test_static_tracks_cycles(self):
        params = EnergyParams()
        base = run(BASELINE)
        free = run(FREE_ATOMICS_FWD)
        model = EnergyModel(params)
        ratio = model.breakdown(free).static_pj / model.breakdown(base).static_pj
        assert abs(ratio - free.cycles / base.cycles) < 1e-9

    def test_free_atomics_saves_energy_on_contended_counter(self):
        model = EnergyModel()
        base = model.breakdown(run(BASELINE))
        free = model.breakdown(run(FREE_ATOMICS_FWD))
        total, dynamic, static = free.normalized_to(base)
        assert total < 1.0
        assert static < 1.0

    def test_normalized_to_self_is_unity(self):
        breakdown = EnergyModel().breakdown(run(BASELINE))
        total, dynamic, static = breakdown.normalized_to(breakdown)
        assert abs(total - 1.0) < 1e-9
        assert abs((dynamic + static) - 1.0) < 1e-9

    def test_custom_params_scale_components(self):
        result = run(BASELINE)
        doubled = EnergyParams(commit_pj=8.0)
        single = EnergyModel(EnergyParams(commit_pj=4.0)).breakdown(result)
        double = EnergyModel(doubled).breakdown(result)
        assert abs(double.components["commit"] - 2 * single.components["commit"]) < 1e-9

    def test_dynamic_fraction_bounds(self):
        breakdown = EnergyModel().breakdown(run(BASELINE))
        assert 0.0 < breakdown.dynamic_fraction < 1.0

    def test_empty_breakdown_safe(self):
        empty = EnergyBreakdown(dynamic_pj=0.0, static_pj=0.0)
        assert empty.total_pj == 0.0
        assert empty.dynamic_fraction == 0.0
