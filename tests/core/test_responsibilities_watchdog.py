"""Tests for forwarding responsibilities and the deadlock watchdog."""

from repro.common.events import EventQueue
from repro.common.stats import StatsRegistry
from repro.core.atomic_queue import AtomicQueue
from repro.core.forwarding import (
    LoadSource,
    chain_depth_of,
    decide_load_source,
)
from repro.core.policy import BASELINE, FREE_ATOMICS, FREE_ATOMICS_FWD
from repro.core.responsibilities import (
    grant_forwarding_responsibility,
    revoke_forwarding_responsibility,
)
from repro.core.watchdog import DeadlockWatchdog
from repro.isa.instructions import AtomicRMW, Load, MemoryOperand, Store
from repro.uarch.dynins import DynInstr
from repro.uarch.lsq import StoreQueue


def atomic(seq, word=None, data_ready=False):
    instr = DynInstr(seq, AtomicRMW(dst=1, imm=1, mem=MemoryOperand(2)), seq)
    if word is not None:
        instr.word = word
        instr.addr_ready = True
    instr.store_data_ready = data_ready
    if data_ready:
        instr.store_value = 1
    return instr


def plain_store(seq, word=None, data_ready=False):
    instr = DynInstr(seq, Store(imm=0, mem=MemoryOperand(2)), seq)
    if word is not None:
        instr.word = word
        instr.addr_ready = True
    instr.store_data_ready = data_ready
    if data_ready:
        instr.store_value = 0
    return instr


def load(seq, word):
    instr = DynInstr(seq, Load(dst=1, mem=MemoryOperand(2)), seq)
    instr.word = word
    instr.addr_ready = True
    return instr


class TestResponsibilities:
    def make_entry(self, seq=5):
        aq = AtomicQueue(4, StatsRegistry(), on_fully_unlocked=lambda line: None)
        return aq.allocate(atomic(seq))

    def test_grant_from_store_unlock_sets_do_not_unlock(self):
        entry = self.make_entry()
        source = atomic(3)
        grant_forwarding_responsibility(entry, source)
        assert source.do_not_unlock
        assert entry.source_store is source
        assert entry.chain_depth == 1

    def test_grant_from_ordinary_store_sets_lock_on_access(self):
        entry = self.make_entry()
        source = plain_store(3)
        grant_forwarding_responsibility(entry, source)
        assert entry in source.lock_on_behalf
        assert not source.do_not_unlock

    def test_chain_depth_accumulates(self):
        aq = AtomicQueue(4, StatsRegistry(), on_fully_unlocked=lambda line: None)
        first = atomic(1)
        entry1 = aq.allocate(first)
        entry1.chain_depth = 3
        entry2 = aq.allocate(atomic(2))
        grant_forwarding_responsibility(entry2, first)
        assert entry2.chain_depth == 4

    def test_revoke_before_store_performed(self):
        entry = self.make_entry()
        source = atomic(3)
        grant_forwarding_responsibility(entry, source)
        revoke_forwarding_responsibility(entry)
        assert not source.do_not_unlock
        assert entry.source_store is None

    def test_revoke_after_store_performed_is_noop(self):
        entry = self.make_entry()
        source = atomic(3)
        grant_forwarding_responsibility(entry, source)
        source.store_performed = True
        revoke_forwarding_responsibility(entry)
        assert source.do_not_unlock  # lock already transferred via broadcast

    def test_revoke_ordinary_store(self):
        entry = self.make_entry()
        source = plain_store(3)
        grant_forwarding_responsibility(entry, source)
        revoke_forwarding_responsibility(entry)
        assert source.lock_on_behalf == []


class TestForwardingDecisions:
    def setup_method(self):
        self.sq = StoreQueue(16)

    def test_no_match_goes_to_cache(self):
        decision = decide_load_source(load(9, word=5), self.sq, FREE_ATOMICS_FWD, 32)
        assert decision.action is LoadSource.CACHE

    def test_regular_load_forwards_from_ready_store(self):
        store = plain_store(1, word=5, data_ready=True)
        self.sq.insert(store)
        decision = decide_load_source(load(9, word=5), self.sq, FREE_ATOMICS_FWD, 32)
        assert decision.action is LoadSource.FORWARD
        assert decision.store is store

    def test_regular_load_waits_for_data(self):
        self.sq.insert(plain_store(1, word=5, data_ready=False))
        decision = decide_load_source(load(9, word=5), self.sq, FREE_ATOMICS_FWD, 32)
        assert decision.action is LoadSource.WAIT_DATA

    def test_load_lock_forwards_only_with_fwd_policy(self):
        self.sq.insert(atomic(1, word=5, data_ready=True))
        lock = atomic(9, word=5)
        assert (
            decide_load_source(lock, self.sq, FREE_ATOMICS, 32).action
            is LoadSource.WAIT_PERFORM
        )
        assert (
            decide_load_source(lock, self.sq, FREE_ATOMICS_FWD, 32).action
            is LoadSource.FORWARD
        )

    def test_chain_limit_breaks_forwarding(self):
        source = atomic(1, word=5, data_ready=True)
        entry_holder = AtomicQueue(4, StatsRegistry(), lambda line: None)
        entry = entry_holder.allocate(source)
        entry.chain_depth = 32
        self.sq.insert(source)
        decision = decide_load_source(atomic(9, word=5), self.sq, FREE_ATOMICS_FWD, 32)
        assert decision.action is LoadSource.WAIT_PERFORM
        assert chain_depth_of(source) == 32

    def test_fenced_load_vs_store_unlock_waits(self):
        self.sq.insert(atomic(1, word=5, data_ready=True))
        decision = decide_load_source(load(9, word=5), self.sq, BASELINE, 32)
        assert decision.action is LoadSource.WAIT_PERFORM

    def test_youngest_matching_store_wins(self):
        older = plain_store(1, word=5, data_ready=True)
        newer = plain_store(2, word=5, data_ready=True)
        self.sq.insert(older)
        self.sq.insert(newer)
        decision = decide_load_source(load(9, word=5), self.sq, FREE_ATOMICS_FWD, 32)
        assert decision.store is newer


class TestWatchdog:
    def make(self, threshold=100, enabled=True):
        queue = EventQueue()
        stats = StatsRegistry()
        aq = AtomicQueue(4, stats, on_fully_unlocked=lambda line: None)
        flushes = []

        def flush(entry):
            # Mirror the core: the flush squashes from the oldest locked
            # atomic, lifting its lock (otherwise the watchdog re-arms).
            flushes.append(entry)
            aq.squash_from(entry.seq)

        watchdog = DeadlockWatchdog(queue, aq, threshold, enabled, flush, stats)
        return queue, aq, watchdog, flushes

    def test_fires_after_threshold_with_lock_held(self):
        queue, aq, watchdog, flushes = self.make(threshold=100)
        entry = aq.allocate(atomic(1))
        entry.lock(10, 0, 0)
        watchdog.reset()
        queue.run_until(99)
        assert not flushes
        while queue.run_next():
            pass
        assert flushes == [entry]
        assert watchdog.timeouts == 1

    def test_does_not_fire_without_locks(self):
        queue, aq, watchdog, flushes = self.make()
        watchdog.reset()
        while queue.run_next():
            pass
        assert not flushes

    def test_reset_postpones_firing(self):
        queue, aq, watchdog, flushes = self.make(threshold=100)
        entry = aq.allocate(atomic(1))
        entry.lock(10, 0, 0)
        watchdog.reset()
        queue.run_until(60)
        watchdog.reset()  # another load_lock performed
        queue.run_until(130)  # original deadline passed, renewed one not
        assert not flushes
        while queue.run_next():
            pass
        assert flushes  # fires at the renewed deadline

    def test_disabled_watchdog_never_fires(self):
        queue, aq, watchdog, flushes = self.make(enabled=False)
        entry = aq.allocate(atomic(1))
        entry.lock(10, 0, 0)
        watchdog.reset()
        while queue.run_next():
            pass
        assert not flushes

    def test_commit_resolves_before_firing(self):
        queue, aq, watchdog, flushes = self.make(threshold=100)
        instr = atomic(1)
        entry = aq.allocate(instr)
        entry.lock(10, 0, 0)
        watchdog.reset()
        queue.run_until(50)
        aq.deallocate(entry)  # store_unlock performed
        while queue.run_next():
            pass
        assert not flushes


class TestWatchdogAccounting:
    """Regression tests: ``timeouts`` is instance-local state.

    The property used to read the ``watchdog_timeouts`` counter back out
    of the stats registry, so any two watchdogs sharing a registry
    aliased each other's counts, and a fresh watchdog built over a
    reused registry started "pre-fired".
    """

    def make_pair(self, shared_stats=None):
        queue = EventQueue()
        stats = shared_stats or StatsRegistry()
        pair = []
        for _ in range(2):
            aq = AtomicQueue(4, stats, on_fully_unlocked=lambda line: None)
            flush = lambda entry, aq=aq: aq.squash_from(entry.seq)
            pair.append((aq, DeadlockWatchdog(queue, aq, 100, True, flush, stats)))
        return queue, stats, pair

    def fire(self, queue, aq, watchdog):
        entry = aq.allocate(atomic(1))
        entry.lock(10, 0, 0)
        watchdog.reset()
        while queue.run_next():
            pass
        return entry

    def test_shared_registry_does_not_alias_counts(self):
        queue, stats, [(aq0, wd0), (aq1, wd1)] = self.make_pair()
        self.fire(queue, aq0, wd0)
        assert wd0.timeouts == 1
        assert wd1.timeouts == 0  # used to read 1 through the registry
        assert stats.get("watchdog_timeouts") == 1  # summary counter intact

    def test_fresh_instance_over_reused_registry_starts_at_zero(self):
        queue, stats, [(aq0, wd0), _] = self.make_pair()
        self.fire(queue, aq0, wd0)
        assert stats.get("watchdog_timeouts") == 1
        _, _, [(aq2, wd2), _] = self.make_pair(shared_stats=stats)
        assert wd2.timeouts == 0

    def test_on_timeout_hook_observes_each_fire(self):
        queue, stats, [(aq0, wd0), _] = self.make_pair()
        seen = []
        wd0.on_timeout = seen.append
        entry = self.fire(queue, aq0, wd0)
        assert seen == [entry]
        assert wd0.timeouts == 1
