"""Tests for atomic policy definitions."""

import pytest

from repro.common.errors import ConfigError
from repro.core.policy import (
    ALL_POLICIES,
    BASELINE,
    BASELINE_SPEC,
    FREE_ATOMICS,
    FREE_ATOMICS_FWD,
    VERSIONED,
    AtomicPolicy,
    policy_by_name,
    policy_names,
)


class TestStandardPolicies:
    def test_five_designs(self):
        assert len(ALL_POLICIES) == 5
        names = [p.name for p in ALL_POLICIES]
        assert names == [
            "baseline", "baseline+spec", "free", "free+fwd", "versioned",
        ]

    def test_baseline_is_fenced_nonspeculative(self):
        assert BASELINE.fenced and not BASELINE.speculative
        assert not BASELINE.is_free

    def test_spec_is_fenced_speculative(self):
        assert BASELINE_SPEC.fenced and BASELINE_SPEC.speculative

    def test_free_designs_are_unfenced(self):
        assert FREE_ATOMICS.is_free and FREE_ATOMICS_FWD.is_free
        assert not FREE_ATOMICS.forward_to_atomic
        assert FREE_ATOMICS_FWD.forward_to_atomic

    def test_versioned_is_unfenced_speculative_nonforwarding(self):
        assert VERSIONED.is_free and VERSIONED.speculative
        assert VERSIONED.versioned
        assert not VERSIONED.forward_to_atomic
        # Only the versioned design carries the flag.
        assert [p.versioned for p in ALL_POLICIES] == [
            False, False, False, False, True,
        ]

    def test_lookup_by_name(self):
        assert policy_by_name("free+fwd") is FREE_ATOMICS_FWD
        assert policy_by_name("versioned") is VERSIONED
        with pytest.raises(ConfigError, match="unknown policy"):
            policy_by_name("nope")

    def test_unknown_name_error_lists_every_registered_policy(self):
        # The message is derived from ALL_POLICIES, not hand-written.
        with pytest.raises(ConfigError) as exc:
            policy_by_name("nope")
        for name in policy_names():
            assert name in str(exc.value)

    def test_policy_names_matches_registry(self):
        assert policy_names() == tuple(p.name for p in ALL_POLICIES)


class TestInvariants:
    def test_forwarding_requires_unfenced(self):
        with pytest.raises(ConfigError):
            AtomicPolicy("bad", speculative=True, fenced=True, forward_to_atomic=True)

    def test_unfenced_requires_speculative(self):
        with pytest.raises(ConfigError):
            AtomicPolicy("bad", speculative=False, fenced=False, forward_to_atomic=False)

    def test_versioned_excludes_fenced(self):
        with pytest.raises(ConfigError, match="versioned"):
            AtomicPolicy(
                "bad", speculative=True, fenced=True,
                forward_to_atomic=False, versioned=True,
            )

    def test_versioned_excludes_forwarding_to_atomics(self):
        with pytest.raises(ConfigError, match="versioned"):
            AtomicPolicy(
                "bad", speculative=True, fenced=False,
                forward_to_atomic=True, versioned=True,
            )
