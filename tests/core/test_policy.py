"""Tests for atomic policy definitions."""

import pytest

from repro.common.errors import ConfigError
from repro.core.policy import (
    ALL_POLICIES,
    BASELINE,
    BASELINE_SPEC,
    FREE_ATOMICS,
    FREE_ATOMICS_FWD,
    AtomicPolicy,
    policy_by_name,
)


class TestStandardPolicies:
    def test_four_designs(self):
        assert len(ALL_POLICIES) == 4
        names = [p.name for p in ALL_POLICIES]
        assert names == ["baseline", "baseline+spec", "free", "free+fwd"]

    def test_baseline_is_fenced_nonspeculative(self):
        assert BASELINE.fenced and not BASELINE.speculative
        assert not BASELINE.is_free

    def test_spec_is_fenced_speculative(self):
        assert BASELINE_SPEC.fenced and BASELINE_SPEC.speculative

    def test_free_designs_are_unfenced(self):
        assert FREE_ATOMICS.is_free and FREE_ATOMICS_FWD.is_free
        assert not FREE_ATOMICS.forward_to_atomic
        assert FREE_ATOMICS_FWD.forward_to_atomic

    def test_lookup_by_name(self):
        assert policy_by_name("free+fwd") is FREE_ATOMICS_FWD
        with pytest.raises(ConfigError, match="unknown policy"):
            policy_by_name("nope")


class TestInvariants:
    def test_forwarding_requires_unfenced(self):
        with pytest.raises(ConfigError):
            AtomicPolicy("bad", speculative=True, fenced=True, forward_to_atomic=True)

    def test_unfenced_requires_speculative(self):
        with pytest.raises(ConfigError):
            AtomicPolicy("bad", speculative=False, fenced=False, forward_to_atomic=False)
