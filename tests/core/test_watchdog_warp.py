"""Watchdog deadlines vs. the global time-warp.

The spin fast-forward engine (``repro.uarch.spinff``) physically removes
parked cores' events from the calendar, which lets ``EventQueue.drain``
warp straight to the next pending event.  Two properties keep that legal
around the deadlock watchdog:

- an armed watchdog is a *real* ``post_at`` queue entry, so a warp can
  land exactly on the deadline but never jump past it, and
- a check that fires while the core's atomic queue is empty is a
  guaranteed no-op (nothing is locked, so there is nothing to flush) at
  the same absolute cycle in both the fast and reference runs — which is
  why spinff may park a core whose watchdog is still armed.
"""

from __future__ import annotations

from repro.common.events import EventQueue
from repro.common.stats import StatsRegistry
from repro.core.atomic_queue import AtomicQueue
from repro.core.watchdog import DeadlockWatchdog
from repro.isa.instructions import AtomicRMW, MemoryOperand
from repro.uarch.dynins import DynInstr


def atomic(seq: int) -> DynInstr:
    return DynInstr(seq, AtomicRMW(dst=1, imm=1, mem=MemoryOperand(2)), seq)


def make(threshold: int = 100):
    queue = EventQueue()
    stats = StatsRegistry()
    aq = AtomicQueue(4, stats, on_fully_unlocked=lambda line: None)
    flushes = []

    def flush(entry):
        flushes.append((queue.now, entry))
        aq.squash_from(entry.seq)

    watchdog = DeadlockWatchdog(queue, aq, threshold, True, flush, stats)
    return queue, aq, watchdog, flushes


def drain(queue: EventQueue, finish_at: int) -> None:
    """Run the queue the way ``System.run`` does (the warping loop)."""
    counter = [1]

    def finish() -> None:
        counter[0] = 0

    queue.post_at(finish_at, finish)
    assert queue.drain(counter, finish_at + 1) == 0


class TestArmedDeadline:
    def test_armed_and_deadline_track_the_pending_check(self):
        queue, aq, watchdog, _ = make(threshold=100)
        assert not watchdog.armed
        assert watchdog.deadline is None
        entry = aq.allocate(atomic(1))
        entry.lock(10, 0, 0)
        watchdog.reset()
        assert watchdog.armed
        assert watchdog.deadline == 100
        aq.deallocate(entry)
        # Disarming only happens when the check actually fires: the
        # entry is a real queue event, never cancelled early.
        assert watchdog.armed
        while queue.run_next():
            pass
        assert not watchdog.armed
        assert watchdog.deadline is None


class TestWarpOrdering:
    def test_warp_lands_on_deadline_not_past_it(self):
        """An otherwise-empty calendar (every spinning core parked) must
        warp to the deadline cycle exactly, and the flush must run
        there — not at the warp target beyond it."""
        queue, aq, watchdog, flushes = make(threshold=100)
        entry = aq.allocate(atomic(1))
        entry.lock(10, 0, 0)
        watchdog.reset()
        drain(queue, finish_at=5000)
        assert [(cycle, e) for cycle, e in flushes] == [(100, entry)]
        assert watchdog.timeouts == 1
        # The gap from cycle 0 to the deadline was warped, not stepped.
        assert queue.warp_jumps >= 1

    def test_aq_empty_check_is_a_noop_at_the_same_cycle(self):
        """The rule that lets spinff park with an armed watchdog: once
        the AQ drains, the pending check fires as a pure no-op at its
        original absolute cycle — no flush, no timeout, no rearm."""
        queue, aq, watchdog, flushes = make(threshold=100)
        entry = aq.allocate(atomic(1))
        entry.lock(10, 0, 0)
        watchdog.reset()
        deadline = watchdog.deadline
        aq.deallocate(entry)  # store_unlock performed; nothing locked
        drain(queue, finish_at=5000)
        assert not flushes
        assert watchdog.timeouts == 0
        assert not watchdog.armed
        # The no-op still consumed the entry at its deadline; a fresh
        # lock re-arms relative to the original activity timestamps.
        assert deadline == 100

    def test_still_locked_check_flushes_despite_warp(self):
        """A warped run must not skip a *live* deadline: lock held at
        the deadline => flush fires there, exactly as without warping."""
        queue, aq, watchdog, flushes = make(threshold=250)
        entry = aq.allocate(atomic(3))
        entry.lock(12, 0, 1)
        watchdog.reset()
        drain(queue, finish_at=9000)
        assert flushes and flushes[0][0] == 250


class TestParkPrimitives:
    """The event-kernel surface spinff's park/unpark path is built on."""

    def test_extract_ring_removes_only_matching_entries(self):
        queue = EventQueue()
        hits = []

        def a() -> None:
            hits.append(("a", queue.now))

        def b() -> None:
            hits.append(("b", queue.now))

        queue.post(5, a)
        queue.post(5, b)
        queue.post(9, a)
        extracted = queue.extract_ring(lambda cb, arg: cb is a)
        assert [(due, cb) for due, _order, cb, _arg in extracted] == [
            (5, a),
            (9, a),
        ]
        while queue.run_next():
            pass
        assert hits == [("b", 5)]

    def test_splice_ring_positions_against_live_entries(self):
        queue = EventQueue()
        hits = []

        def mk(tag):
            def cb() -> None:
                hits.append(tag)

            return cb

        queue.post(4, mk("x"))
        queue.post(4, mk("z"))
        # Replay an extracted entry *between* the live ones.
        queue.splice_ring(4, 1, mk("y"), None)
        while queue.run_next():
            pass
        assert hits == ["x", "y", "z"]

    def test_post_log_records_posting_cycles(self):
        queue = EventQueue()
        log = queue.begin_post_log()
        before = len(log)

        def noop() -> None:
            pass

        queue.post(7, noop)
        queue.post1(3, lambda arg: None, 42)
        assert len(log) == before + 2
        assert set(log.values()) == {queue.now}
        queue.end_post_log()
        queue.post(2, noop)  # no longer recorded
        assert len(log) == before + 2
