"""Tests for the Atomic Queue's four associative searches."""

from repro.common.stats import StatsRegistry
from repro.core.atomic_queue import AtomicQueue
from repro.isa.instructions import AtomicRMW, MemoryOperand, Store
from repro.uarch.dynins import DynInstr


def atomic(seq):
    return DynInstr(seq, AtomicRMW(dst=1, imm=1, mem=MemoryOperand(2)), seq)


def plain_store(seq):
    return DynInstr(seq, Store(imm=0, mem=MemoryOperand(2)), seq)


def make_aq(capacity=4):
    unlocked = []
    aq = AtomicQueue(capacity, StatsRegistry(), on_fully_unlocked=unlocked.append)
    return aq, unlocked


class TestAllocation:
    def test_allocate_until_full(self):
        aq, _ = make_aq(2)
        assert aq.allocate(atomic(1)) is not None
        assert aq.allocate(atomic(2)) is not None
        assert aq.full
        assert aq.allocate(atomic(3)) is None  # front-end stall

    def test_deallocate_frees_capacity(self):
        aq, _ = make_aq(1)
        entry = aq.allocate(atomic(1))
        aq.deallocate(entry)
        assert not aq.full
        assert len(aq) == 0

    def test_entry_backlink(self):
        aq, _ = make_aq()
        instr = atomic(1)
        entry = aq.allocate(instr)
        assert instr.aq_entry is entry
        aq.deallocate(entry)
        assert instr.aq_entry is None


class TestLockedSearches:
    def test_set_way_search(self):
        aq, _ = make_aq()
        entry = aq.allocate(atomic(1))
        entry.lock(line=100, set_index=4, way=2)
        assert aq.is_line_locked(100)
        assert aq.is_locked_setway(4, 2)
        assert not aq.is_locked_setway(4, 1)
        assert aq.locked_l1_ways(4) == {2}
        assert aq.locked_l1_ways(5) == set()

    def test_multiple_locks_same_line(self):
        aq, unlocked = make_aq()
        first = aq.allocate(atomic(1))
        second = aq.allocate(atomic(2))
        first.lock(100, 4, 2)
        second.lock(100, 4, 2)
        aq.deallocate(first)
        assert aq.is_line_locked(100)  # still held by the second
        assert unlocked == []
        aq.deallocate(second)
        assert not aq.is_line_locked(100)
        assert unlocked == [100]

    def test_oldest_locked_entry_skips_committed(self):
        aq, _ = make_aq()
        older, younger = atomic(1), atomic(2)
        entry_old = aq.allocate(older)
        entry_young = aq.allocate(younger)
        entry_old.lock(100, 0, 0)
        entry_young.lock(200, 1, 1)
        older.committed = True
        assert aq.oldest_locked_entry() is entry_young


class TestBroadcast:
    def test_forwarded_entry_captures_lock(self):
        aq, _ = make_aq()
        entry = aq.allocate(atomic(5))
        source = plain_store(3)
        entry.source_store = source
        aq.on_store_broadcast(source, line=77, set_index=2, way=1)
        assert entry.locked and entry.line == 77
        assert entry.source_store is None
        assert aq.is_line_locked(77)

    def test_broadcast_ignores_unrelated_entries(self):
        aq, _ = make_aq()
        entry = aq.allocate(atomic(5))
        aq.on_store_broadcast(plain_store(3), line=77, set_index=2, way=1)
        assert not entry.locked


class TestFlush:
    def test_unlock_on_squash(self):
        aq, unlocked = make_aq()
        entry = aq.allocate(atomic(1))
        entry.lock(100, 4, 2)
        flushed = aq.squash_from(1)
        assert flushed == [entry]
        assert not aq.is_line_locked(100)
        assert unlocked == [100]

    def test_partial_flush_keeps_older(self):
        aq, unlocked = make_aq()
        older = aq.allocate(atomic(1))
        younger = aq.allocate(atomic(5))
        older.lock(100, 0, 0)
        younger.lock(200, 1, 0)
        aq.squash_from(3)
        assert aq.is_line_locked(100)
        assert not aq.is_line_locked(200)
        assert unlocked == [200]

    def test_flush_same_line_no_notify_while_older_holds(self):
        aq, unlocked = make_aq()
        older = aq.allocate(atomic(1))
        younger = aq.allocate(atomic(5))
        older.lock(100, 0, 0)
        younger.lock(100, 0, 0)
        aq.squash_from(3)
        assert aq.is_line_locked(100)
        assert unlocked == []

    def test_flush_nothing(self):
        aq, _ = make_aq()
        aq.allocate(atomic(1))
        assert aq.squash_from(10) == []
        assert len(aq) == 1
