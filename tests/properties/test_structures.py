"""Property tests on core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.common.config import CacheConfig
from repro.common.events import EventQueue
from repro.common.stats import Histogram
from repro.isa.instructions import Alu, AluOp
from repro.isa.registers import truncate
from repro.isa.semantics import evaluate_alu, to_signed
from repro.mem.cache import CacheArray
from repro.uarch.bandwidth import BandwidthLimiter

values64 = st.integers(0, (1 << 64) - 1)


class TestSemanticsProperties:
    @given(a=values64, b=values64)
    @settings(max_examples=200)
    def test_results_stay_in_64_bits(self, a, b):
        for op in (AluOp.ADD, AluOp.SUB, AluOp.MUL, AluOp.SHL, AluOp.XOR):
            instr = Alu(op=op, dst=1, src1=2, src2=3)
            assert 0 <= evaluate_alu(instr, a, b) < (1 << 64)

    @given(a=values64, b=values64)
    def test_add_commutes(self, a, b):
        instr = Alu(op=AluOp.ADD, dst=1, src1=2, src2=3)
        assert evaluate_alu(instr, a, b) == evaluate_alu(instr, b, a)

    @given(a=values64, b=values64)
    def test_xor_involution(self, a, b):
        instr = Alu(op=AluOp.XOR, dst=1, src1=2, src2=3)
        assert evaluate_alu(instr, evaluate_alu(instr, a, b), b) == truncate(a)

    @given(a=values64)
    def test_signed_round_trip(self, a):
        assert truncate(to_signed(a)) == truncate(a)

    @given(a=values64, b=values64)
    def test_cmp_lt_total_order(self, a, b):
        instr = Alu(op=AluOp.CMP_LT, dst=1, src1=2, src2=3)
        lt_ab = evaluate_alu(instr, a, b)
        lt_ba = evaluate_alu(instr, b, a)
        if truncate(a) == truncate(b):
            assert lt_ab == lt_ba == 0
        else:
            assert lt_ab + lt_ba == 1


class TestEventQueueProperties:
    @given(delays=st.lists(st.integers(0, 50), min_size=1, max_size=40))
    @settings(max_examples=100)
    def test_events_fire_in_nondecreasing_time(self, delays):
        queue = EventQueue()
        fired: list[int] = []
        for delay in delays:
            queue.schedule(delay, lambda: fired.append(queue.now))
        while queue.run_next():
            pass
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestBandwidthProperties:
    @given(
        width=st.integers(1, 8),
        requests=st.lists(st.integers(0, 5), min_size=1, max_size=60),
    )
    @settings(max_examples=100)
    def test_never_exceeds_width_per_cycle(self, width, requests):
        bw = BandwidthLimiter(width)
        now = 0
        granted: dict[int, int] = {}
        for step in requests:
            now += step
            cycle = bw.grant(now)
            assert cycle >= now
            granted[cycle] = granted.get(cycle, 0) + 1
        assert all(count <= width for count in granted.values())


class TestCacheProperties:
    @given(
        lines=st.lists(st.integers(0, 200), min_size=1, max_size=120),
        ways=st.integers(1, 8),
        sets_log2=st.integers(0, 4),
    )
    @settings(max_examples=100)
    def test_capacity_and_presence_invariants(self, lines, ways, sets_log2):
        sets = 1 << sets_log2
        cache = CacheArray(CacheConfig("P", sets * ways * 64, ways, 0, 1))
        for line in lines:
            cache.fill(line)
            assert line in cache  # just-filled is resident
        assert len(cache) <= sets * ways
        # Every resident line is found where the set math says it is.
        for set_index in range(sets):
            for line in cache.lines_in_set(set_index):
                assert line % sets == set_index

    @given(lines=st.lists(st.integers(0, 40), min_size=2, max_size=40))
    @settings(max_examples=50)
    def test_excluded_way_never_evicted(self, lines):
        ways = 2
        cache = CacheArray(CacheConfig("P", ways * 64, ways, 0, 1))
        protected = lines[0]
        cache.fill(protected)
        protected_way = cache.way_of(protected)
        for line in lines[1:]:
            cache.fill(line, excluded_ways={protected_way})
            assert protected in cache


class TestHistogramProperties:
    @given(samples=st.lists(st.integers(-100, 100), min_size=1, max_size=200))
    @settings(max_examples=100)
    def test_mean_consistency(self, samples):
        hist = Histogram()
        for sample in samples:
            hist.add(sample)
        assert hist.count == len(samples)
        assert hist.total == sum(samples)
        assert abs(hist.mean - sum(samples) / len(samples)) < 1e-9
        assert hist.min == min(samples)
        assert hist.max == max(samples)

    @given(
        a=st.lists(st.integers(0, 50), max_size=50),
        b=st.lists(st.integers(0, 50), max_size=50),
    )
    def test_merge_is_concatenation(self, a, b):
        merged, reference = Histogram(), Histogram()
        left, right = Histogram(), Histogram()
        for sample in a:
            left.add(sample)
        for sample in b:
            right.add(sample)
        left.merge(right)
        for sample in a + b:
            reference.add(sample)
        assert left.count == reference.count
        assert left.total == reference.total
