"""Property tests for the directory's bitmask sharer sets.

The seed directory kept ``entry.sharers`` as a real ``set[int]``; the
banked layout replaced it with a bitmask word in a struct-of-arrays
bank, fronted by the :class:`~repro.mem.directory._SharerSet` view.
These tests drive randomized operation traces through the view and a
plain ``set`` model in lockstep and require them to agree after every
step — the bitmask must be *semantically invisible*.

Same idea for slot recycling: a randomized alloc/release trace against
a dict model checks that freed slots are scrubbed, recycled views stay
bound to their slot, and live state never leaks across a reuse.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.mem.directory import DirectoryEntry, _DirectoryBank, _mask_iter

#: Core ids for the paper's largest machine (32 cores) plus headroom so
#: masks exercise multi-word-feeling bit positions.
core_ids = st.integers(0, 40)

#: One mutation step: (op, core). ``clear`` ignores the core.
steps = st.lists(
    st.tuples(st.sampled_from(["add", "discard", "clear"]), core_ids),
    max_size=60,
)


def fresh_view(line: int = 0x40) -> DirectoryEntry:
    return _DirectoryBank().alloc(line)


class TestSharerSetVsModel:
    @given(trace=steps)
    @settings(max_examples=200)
    def test_trace_agrees_with_set_model(self, trace):
        entry = fresh_view()
        view = entry.sharers
        model: set[int] = set()
        for op, core in trace:
            if op == "add":
                view.add(core)
                model.add(core)
            elif op == "discard":
                view.discard(core)
                model.discard(core)
            else:
                view.clear()
                model.clear()
            # Full observable surface after every step.
            assert set(view) == model
            assert len(view) == len(model)
            assert bool(view) == bool(model)
            assert view == model  # __eq__ against a real set
            for probe in range(42):
                assert (probe in view) == (probe in model)

    @given(cores=st.lists(core_ids, max_size=40))
    @settings(max_examples=200)
    def test_iteration_is_ascending_and_duplicate_free(self, cores):
        entry = fresh_view()
        for core in cores:
            entry.sharers.add(core)
        seen = list(entry.sharers)
        assert seen == sorted(set(cores))

    @given(cores=st.sets(core_ids, max_size=40), owner=st.none() | core_ids)
    @settings(max_examples=200)
    def test_holders_match_sharers_plus_owner(self, cores, owner):
        entry = fresh_view()
        for core in cores:
            entry.sharers.add(core)
        entry.owner = owner
        expected = set(cores) | ({owner} if owner is not None else set())
        assert entry.holders == expected
        assert set(_mask_iter(entry.holders_mask)) == expected

    @given(mask=st.integers(0, (1 << 64) - 1))
    @settings(max_examples=200)
    def test_mask_iter_round_trips(self, mask):
        assert sum(1 << bit for bit in _mask_iter(mask)) == mask


class TestBankRecycling:
    @given(
        trace=st.lists(
            st.tuples(
                st.sampled_from(["alloc", "release"]),
                st.integers(0, 15),  # line for alloc / choice for release
                core_ids,
            ),
            max_size=60,
        )
    )
    @settings(max_examples=200)
    def test_alloc_release_trace_vs_dict_model(self, trace):
        bank = _DirectoryBank()
        live: dict[int, DirectoryEntry] = {}  # slot -> view
        model: dict[int, set[int]] = {}  # slot -> expected sharers
        for op, value, core in trace:
            if op == "alloc":
                entry = bank.alloc(value)
                slot = entry._slot
                assert slot not in live, "allocator handed out a live slot"
                # A recycled slot must come back scrubbed.
                assert entry.owner is None
                assert not entry.sharers
                assert entry.pending is None
                assert entry.line == value
                entry.sharers.add(core)
                live[slot] = entry
                model[slot] = {core}
            elif live:
                slot = sorted(live)[value % len(live)]
                bank.release(slot)
                del live[slot]
                del model[slot]
                assert slot in bank.free
                assert bank.lines[slot] == -1
                assert bank.sharers[slot] == 0
            # Releasing (or allocating) one slot must not disturb others.
            for slot, entry in live.items():
                assert bank.views[slot] is entry  # views are permanent
                assert set(entry.sharers) == model[slot]
        assert set(bank.free) | set(live) == set(range(len(bank.lines)))
