"""Property test: no interleaving of atomic RMWs ever loses an update.

Randomizes thread count, per-thread iteration counts, per-thread timing
skew, the number of contended counters, and the policy.  The sum of all
fetch_add contributions must always be exact — the paper's atomicity
guarantee (type-1, section 3.4) as a machine-checked property.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.policy import ALL_POLICIES
from repro.isa.builder import ProgramBuilder
from repro.system.simulator import run_workload
from repro.workloads.base import Workload
from tests.conftest import small_system_config

BASE = 0x200000


@st.composite
def scenarios(draw):
    num_threads = draw(st.integers(2, 4))
    num_counters = draw(st.integers(1, 3))
    threads = []
    for _ in range(num_threads):
        threads.append(
            {
                "skew": draw(st.integers(0, 6)),
                "iterations": draw(st.integers(1, 12)),
                "order": draw(st.permutations(range(num_counters))),
            }
        )
    policy = draw(st.sampled_from(ALL_POLICIES))
    return num_counters, threads, policy


@given(scenario=scenarios())
@settings(max_examples=30, deadline=None)
def test_no_lost_updates(scenario):
    num_counters, threads, policy = scenario
    programs = []
    expected = [0] * num_counters
    for spec in threads:
        builder = ProgramBuilder()
        for _ in range(spec["skew"]):
            builder.nop()
        builder.li(2, 0)
        loop = builder.fresh_label("loop")
        builder.label(loop)
        for counter in spec["order"]:
            builder.li(1, BASE + counter * 0x40)
            builder.fetch_add(dst=3, base=1, imm=1)
        builder.addi(2, 2, 1)
        builder.branch_lt(2, spec["iterations"], loop)
        programs.append(builder.build())
        for counter in range(num_counters):
            expected[counter] += spec["iterations"]
    workload = Workload("prop_atomic", programs)
    result = run_workload(
        workload,
        policy=policy,
        config=small_system_config(len(threads), watchdog_cycles=400),
    )
    for counter in range(num_counters):
        assert result.read_word(BASE + counter * 0x40) == expected[counter], (
            f"lost updates on counter {counter} under {policy.name}"
        )
