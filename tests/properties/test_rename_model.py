"""Model-based property test for the rename map.

Random sequences of claim/complete/commit/squash operations are applied
both to the real :class:`RenameMap` and to a trivially correct model (a
stack of mappings); after every step the visible register state must
agree.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.isa.instructions import Alu, AluOp
from repro.uarch.dynins import DynInstr
from repro.uarch.rename import RenameMap

NUM_REGS = 4  # small register space makes collisions common


@st.composite
def scripts(draw):
    """A program-order script of dispatches with post-hoc outcomes."""
    length = draw(st.integers(1, 24))
    steps = []
    for _ in range(length):
        steps.append(
            {
                "reg": draw(st.integers(0, NUM_REGS - 1)),
                "value": draw(st.integers(0, 99)),
            }
        )
    # A squash point somewhere in the sequence (or none).
    squash_at = draw(st.one_of(st.none(), st.integers(0, length)))
    # How many of the (surviving) oldest instructions commit.
    commits = draw(st.integers(0, length))
    return steps, squash_at, commits


@given(script=scripts())
@settings(max_examples=200)
def test_rename_map_matches_model(script):
    steps, squash_at, commits = script
    rename = RenameMap()
    model_committed = [0] * NUM_REGS

    instrs: list[DynInstr] = []
    for seq, step in enumerate(steps):
        instr = DynInstr(seq, Alu(op=AluOp.ADD, dst=step["reg"], src1=0, imm=1), seq)
        instr.result = step["value"]
        rename.claim(step["reg"], instr)
        instrs.append(instr)

    # Squash a suffix.
    if squash_at is not None:
        squashed = [i for i in reversed(instrs) if i.seq >= squash_at]
        rename.rollback(squashed)
        for instr in squashed:
            instr.squashed = True
        instrs = [i for i in instrs if i.seq < squash_at]

    # Commit the oldest `commits` survivors in order.
    for instr in instrs[:commits]:
        instr.completed = True
        reg = instr.instr.dst  # type: ignore[union-attr]
        rename.commit(reg, instr, instr.result)
        model_committed[reg] = instr.result
        instr.committed = True

    in_flight = instrs[commits:]
    for reg in range(NUM_REGS):
        # Model: youngest in-flight producer of reg, else committed value.
        producer = None
        for instr in in_flight:
            if instr.instr.dst == reg:  # type: ignore[union-attr]
                producer = instr
        expected_producer = producer
        actual = rename.producer_of(reg)
        assert actual is expected_producer, (
            f"reg {reg}: expected {expected_producer}, got {actual}"
        )
        if expected_producer is None:
            ready, value, _ = rename.read_or_producer(reg)
            assert ready and value == model_committed[reg]
