"""Property: the spin fast-forward engine only parks truly dead spins.

Parking a loop means skipping its laps wholesale, so a loop with a
visible side effect — a store, an atomic, anything that changes memory
each iteration — must never be parked.  The detector guarantees this
structurally: the prefilter and signature reject any ROB holding a
non-{ALU, branch, load} instruction class and any core with a non-empty
SQ/AQ (see ``repro.uarch.spinff``).  These properties hold it to that
with randomized hand-built spin loops, run through both legs:

- a spin loop that performs a store/atomic each lap never parks, and
- whatever the detector decides, the final memory and the canonical
  summary are byte-identical to the ``REPRO_NO_FASTPATH=1`` reference.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from hypothesis import given, settings, strategies as st

from repro.common.config import icelake_config
from repro.core.policy import FREE_ATOMICS_FWD
from repro.isa.builder import ProgramBuilder
from repro.system.simulator import run_workload
from repro.workloads.base import Workload

FLAG = 0x8000  # release flag, own line
SIDE = 0x8040  # side-effect target, own line
DONE = 0x8080  # spinner's exit marker, own line

SIDE_EFFECTS = ("none", "store", "fetch_add", "exchange")


@contextmanager
def _leg(fastpath: bool):
    saved = {
        var: os.environ.pop(var, None)
        for var in ("REPRO_NO_FASTPATH", "REPRO_NO_SPINFF")
    }
    if not fastpath:
        os.environ["REPRO_NO_FASTPATH"] = "1"
    try:
        yield
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


def spinner_program(side_effect: str, filler: int):
    """Spin on FLAG; optionally dirty SIDE every lap; record exit."""
    b = ProgramBuilder("spinner")
    b.li(1, FLAG)
    b.li(2, SIDE)
    spin = b.fresh_label("spin")
    b.label(spin)
    with b.spin_region():
        b.pause()
        if side_effect == "store":
            b.store(imm=1, base=2)
        elif side_effect == "fetch_add":
            b.fetch_add(3, base=2, imm=1)
        elif side_effect == "exchange":
            b.exchange(3, base=2, imm=7)
        for _ in range(filler):
            b.addi(4, 4, 1)
        b.load(5, base=1)
        b.branch_eq(5, 0, spin)
    b.li(6, DONE)
    b.store(src=4, base=6)
    return b.build()


def releaser_program(delay: int):
    """Busy-loop ``delay`` iterations, then set FLAG."""
    b = ProgramBuilder("releaser")
    b.li(1, FLAG)
    b.li(2, delay)
    loop = b.fresh_label("delay")
    b.label(loop)
    b.addi(2, 2, -1)
    b.branch_ne(2, 0, loop)
    b.store(imm=1, base=1)
    return b.build()


def spin_workload(side_effect: str, delay: int, filler: int) -> Workload:
    return Workload(
        f"spin-{side_effect}",
        [spinner_program(side_effect, filler), releaser_program(delay)],
    )


def _observe(workload, fastpath: bool):
    with _leg(fastpath):
        result = run_workload(
            workload,
            policy=FREE_ATOMICS_FWD,
            config=icelake_config(num_cores=2),
        )
    return (
        result.fastforward["parks"],
        result.read_word(SIDE),
        result.read_word(DONE),
        result.summary().canonical_json(),
    )


@settings(max_examples=12, deadline=None)
@given(
    side_effect=st.sampled_from(SIDE_EFFECTS),
    delay=st.integers(min_value=60, max_value=400),
    filler=st.integers(min_value=0, max_value=2),
)
def test_side_effect_spins_never_park_and_stay_identical(
    side_effect, delay, filler
):
    workload = spin_workload(side_effect, delay, filler)
    fast = _observe(workload, fastpath=True)
    reference = _observe(workload, fastpath=False)
    assert reference[0] == 0  # reference leg cannot park by construction
    if side_effect != "none":
        assert fast[0] == 0, (
            f"parked a spin loop with a visible {side_effect} side effect"
        )
    # Identical final memory and byte-identical summary either way.
    assert fast[1:] == reference[1:]


def test_clean_spin_actually_parks():
    """Guard against the property trivially passing because the
    detector never parks anything: the side-effect-free variant of the
    exact same loop must park, skip cycles, and still match the
    reference byte for byte."""
    workload = spin_workload("none", 500, 0)
    fast = _observe(workload, fastpath=True)
    reference = _observe(workload, fastpath=False)
    assert fast[0] > 0, "clean spin never parked: detector dead?"
    assert fast[1:] == reference[1:]
