"""Property test: the out-of-order core is functionally equivalent to
the sequential reference interpreter on arbitrary single-threaded
programs (same final memory, same committed instruction count).

This is the strongest guard against speculation bugs: any wrong-path
leak, bad rollback, forwarding error, or lost store shows up as a
divergence from the in-order model.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policy import ALL_POLICIES
from repro.isa.builder import ProgramBuilder
from repro.isa.interpreter import ReferenceInterpreter
from repro.system.simulator import run_workload
from repro.workloads.base import Workload
from tests.conftest import small_system_config

BASE = 0x100000
REGION_WORDS = 16
WORK_REGS = (2, 3, 4, 5, 6)

# r1 holds the region base and is never overwritten.
_reg = st.sampled_from(WORK_REGS)
_offset = st.integers(0, REGION_WORDS - 1).map(lambda w: w * 8)
_imm = st.integers(0, 255)


@st.composite
def _operation(draw):
    kind = draw(
        st.sampled_from(
            ["addi", "xori", "muli", "add", "load", "store", "store_imm",
             "fetch_add", "exchange", "tas", "cas", "branch_block", "fence"]
        )
    )
    if kind in ("addi", "xori", "muli"):
        return (kind, draw(_reg), draw(_reg), draw(_imm))
    if kind == "add":
        return (kind, draw(_reg), draw(_reg), draw(_reg))
    if kind == "load":
        return (kind, draw(_reg), draw(_offset))
    if kind == "store":
        return (kind, draw(_reg), draw(_offset))
    if kind == "store_imm":
        return (kind, draw(_imm), draw(_offset))
    if kind in ("fetch_add", "exchange"):
        return (kind, draw(_reg), draw(_offset), draw(_imm))
    if kind == "tas":
        return (kind, draw(_reg), draw(_offset))
    if kind == "cas":
        return (kind, draw(_reg), draw(_offset), draw(_reg), draw(_reg))
    if kind == "branch_block":
        return (kind, draw(_reg), draw(_imm), draw(st.integers(1, 3)))
    return (kind,)


def _emit(builder: ProgramBuilder, op: tuple) -> None:
    kind = op[0]
    if kind == "addi":
        builder.addi(op[1], op[2], op[3])
    elif kind == "xori":
        builder.xori(op[1], op[2], op[3])
    elif kind == "muli":
        builder.muli(op[1], op[2], op[3] | 1)
    elif kind == "add":
        builder.add(op[1], op[2], op[3])
    elif kind == "load":
        builder.load(op[1], base=1, offset=op[2])
    elif kind == "store":
        builder.store(src=op[1], base=1, offset=op[2])
    elif kind == "store_imm":
        builder.store(imm=op[1], base=1, offset=op[2])
    elif kind == "fetch_add":
        builder.fetch_add(dst=op[1], base=1, offset=op[2], imm=op[3])
    elif kind == "exchange":
        builder.exchange(dst=op[1], base=1, offset=op[2], imm=op[3])
    elif kind == "tas":
        builder.test_and_set(dst=op[1], base=1, offset=op[2])
    elif kind == "cas":
        builder.cas(dst=op[1], base=1, offset=op[2], expected=op[3], src=op[4])
    elif kind == "branch_block":
        skip = builder.fresh_label("skip")
        builder.branch_ne(op[1], op[2] & 3, skip)
        for _ in range(op[3]):
            builder.addi(op[1], op[1], 1)
        builder.label(skip)
    elif kind == "fence":
        builder.fence()


@st.composite
def programs(draw):
    """Straight-line body (with forward branches) inside a bounded loop."""
    prologue = draw(st.lists(_operation(), min_size=1, max_size=8))
    body = draw(st.lists(_operation(), min_size=1, max_size=12))
    loop_count = draw(st.integers(1, 4))
    builder = ProgramBuilder("prop")
    builder.li(1, BASE)
    for reg in WORK_REGS:
        builder.li(reg, draw(_imm))
    for op in prologue:
        _emit(builder, op)
    builder.li(7, 0)
    loop = builder.fresh_label("loop")
    builder.label(loop)
    for op in body:
        _emit(builder, op)
    builder.addi(7, 7, 1)
    builder.branch_lt(7, loop_count, loop)
    return builder.build()


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
@given(program=programs())
@settings(max_examples=25, deadline=None)
def test_final_state_matches_reference(policy, program):
    reference = ReferenceInterpreter(program, initial_regs={0: 0}).run()
    workload = Workload("prop", [program])
    result = run_workload(workload, policy=policy, config=small_system_config(1))
    for address, value in reference.memory.items():
        assert result.read_word(address) == value, (
            f"memory divergence at {address:#x} under {policy.name}"
        )
    assert result.committed_instructions == reference.committed
