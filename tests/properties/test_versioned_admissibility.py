"""Property test: the versioned policy only ever commits TSO outcomes.

The versioned design replaces the decode-time fences with release
version chaining (acquires issue behind the previous release, plain
loads retire behind pending releases).  Its correctness argument is
containment: every reordering it permits, Free atomics also permits —
so each committed outcome must fall inside the forward-enumerated TSO
outcome set of its program, and each committed trace must be
explainable by the operational x86-TSO machine.

Two generators exercise it here:

- randomized *fuzz programs* from the diy-style generator, paired with
  seeded perturbation-knob draws (latencies, queue sizes, pads), run
  through the full differential pipeline (:func:`run_case`);
- random two-thread ISA programs (same strategy as the all-policy
  admissibility property), checked directly against the abstract
  machine — on both legs of the fast path, since the versioned commit
  gate is duplicated in ``_commit_tick_fast``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.rng import DeterministicRng
from repro.consistency.fuzz import draw_knobs, run_case
from repro.consistency.generator import generate_tests
from repro.consistency.model import TsoChecker
from repro.core.policy import VERSIONED
from repro.system.simulator import run_workload
from repro.workloads.base import Workload
from tests.conftest import small_system_config
from tests.properties.test_tso_admissibility import (
    LOCATIONS,
    build_program,
    thread_specs,
)


@given(seed=st.integers(0, 2**31 - 1), knob_salt=st.integers(0, 7))
@settings(max_examples=20, deadline=None)
def test_fuzz_cases_commit_only_tso_outcomes(seed, knob_salt):
    """Outcome in the enumerated TSO set, trace admissible, no crash."""
    test = generate_tests(1, seed)[0]
    knobs = draw_knobs(DeterministicRng(seed).fork(knob_salt), test)
    record = run_case(test, VERSIONED, knobs)
    assert record.ok, (
        f"versioned violated the oracle on {test.name} (seed={seed}):\n  "
        + "\n  ".join(f"{v.kind}: {v.detail}" for v in record.violations)
    )
    assert record.outcome in test.allowed


@contextmanager
def _fastpath_leg(no_fastpath: bool):
    """Env-flip context (monkeypatch is function-scoped; @given is not)."""
    saved = os.environ.get("REPRO_NO_FASTPATH")
    try:
        if no_fastpath:
            os.environ["REPRO_NO_FASTPATH"] = "1"
        else:
            os.environ.pop("REPRO_NO_FASTPATH", None)
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_NO_FASTPATH", None)
        else:
            os.environ["REPRO_NO_FASTPATH"] = saved


@pytest.mark.parametrize("no_fastpath", [False, True], ids=["fast", "slow"])
@given(spec0=thread_specs(), spec1=thread_specs(), skew=st.integers(0, 5))
@settings(max_examples=10, deadline=None)
def test_isa_traces_admissible_on_both_legs(no_fastpath, spec0, spec1, skew):
    b1_prefix = [("alu", LOCATIONS[0])] * skew
    programs = [
        build_program(0, spec0),
        build_program(1, b1_prefix + spec1),
    ]
    workload = Workload("versioned_prop", programs)
    with _fastpath_leg(no_fastpath):
        result = run_workload(
            workload,
            policy=VERSIONED,
            config=small_system_config(2, watchdog_cycles=400),
            trace=True,
        )
    assert result.traces is not None
    final = {addr: result.read_word(addr) for addr in LOCATIONS}
    outcome = TsoChecker().admissible(result.traces, final_memory=final)
    assert outcome.admissible, (
        "non-TSO execution under versioned "
        f"({'slow' if no_fastpath else 'fast'} leg):\n"
        f"  core0: {result.traces[0]}\n"
        f"  core1: {result.traces[1]}\n"
        f"  final: {final}"
    )
