"""Property test: every execution the simulator produces is admissible
under the operational x86-TSO model.

Random two-thread programs over two shared locations (stores with
unique values, loads, atomic RMWs, fences) are run with commit-trace
recording under every policy; the recorded per-core commit traces plus
the final memory must be reproducible by the abstract TSO machine of
``repro.consistency.model``.  This checks the *entire* machinery —
speculation, squash, forwarding, unfencing, cache locking — against the
architectural contract the paper claims to preserve.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.consistency.model import TsoChecker
from repro.core.policy import ALL_POLICIES
from repro.isa.builder import ProgramBuilder
from repro.system.simulator import run_workload
from repro.workloads.base import Workload
from tests.conftest import small_system_config

LOCATIONS = (0x300000, 0x300040)  # two distinct cachelines


@st.composite
def thread_specs(draw):
    """A short list of memory ops per thread; store values unique."""
    ops = []
    count = draw(st.integers(2, 5))
    for _ in range(count):
        kind = draw(st.sampled_from(["load", "store", "rmw", "fence", "alu"]))
        location = draw(st.sampled_from(LOCATIONS))
        ops.append((kind, location))
    return ops


def build_program(thread: int, spec: list[tuple[str, int]]) -> object:
    builder = ProgramBuilder(f"tso{thread}")
    builder.li(1, LOCATIONS[0])
    builder.li(2, LOCATIONS[1])
    unique = thread * 1000 + 1
    out_reg = 4
    for kind, location in spec:
        base = 1 if location == LOCATIONS[0] else 2
        if kind == "load":
            builder.load(out_reg, base=base)
            # Publish the observed value so the trace records it (loads
            # already record; the extra add just creates dependence).
            builder.add(5, 5, out_reg)
        elif kind == "store":
            builder.store(imm=unique, base=base)
            unique += 1
        elif kind == "rmw":
            builder.fetch_add(dst=out_reg, base=base, imm=100)
        elif kind == "fence":
            builder.fence()
        else:
            builder.addi(5, 5, 1)
    return builder.build()


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
@given(spec0=thread_specs(), spec1=thread_specs(), skew=st.integers(0, 5))
@settings(max_examples=15, deadline=None)
def test_traces_admissible_under_tso(policy, spec0, spec1, skew):
    b1_prefix = [("alu", LOCATIONS[0])] * skew
    programs = [
        build_program(0, spec0),
        build_program(1, b1_prefix + spec1),
    ]
    workload = Workload("tso_prop", programs)
    result = run_workload(
        workload,
        policy=policy,
        config=small_system_config(2, watchdog_cycles=400),
        trace=True,
    )
    assert result.traces is not None
    final = {addr: result.read_word(addr) for addr in LOCATIONS}
    checker = TsoChecker()
    outcome = checker.admissible(result.traces, final_memory=final)
    assert outcome.admissible, (
        f"non-TSO execution under {policy.name}:\n"
        f"  core0: {result.traces[0]}\n"
        f"  core1: {result.traces[1]}\n"
        f"  final: {final}"
    )
