"""Tests for headline metrics, energy reporting, and the CLI."""

import json

import pytest

from repro.analysis.cli import build_parser, main
from repro.analysis.runner import ExperimentScale, clear_cache
from repro.analysis.summary import (
    PAPER_HEADLINES,
    HeadlineMetrics,
    headline_metrics,
)
from repro.core.policy import ALL_POLICIES
from repro.energy.model import EnergyModel
from repro.energy.report import component_rows, policy_comparison_rows
from repro.system.simulator import run_workload
from tests.conftest import counter_workload, small_system_config

SCALE = ExperimentScale(num_threads=2, instructions_per_thread=400)
SUBSET = ["AS", "canneal"]


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield


class TestHeadline:
    def test_metrics_computed(self):
        metrics = headline_metrics(SCALE, benchmarks=SUBSET)
        rows = metrics.as_rows()
        assert {row["metric"] for row in rows} == set(PAPER_HEADLINES)
        for row in rows:
            assert isinstance(row["measured"], float)

    def test_shape_holds_predicate(self):
        good = HeadlineMetrics(10.0, 20.0, 8.0, 15.0)
        assert good.shape_holds
        bad = HeadlineMetrics(10.0, 5.0, 8.0, 15.0)  # AI lower than all
        assert not bad.shape_holds

    def test_precomputed_rows_short_circuit(self):
        fake_time = [
            {"benchmark": "average", "free+fwd": 0.9},
            {"benchmark": "average-AI", "free+fwd": 0.8},
        ]
        fake_energy = [
            {"benchmark": "average", "free+fwd": 0.95},
            {"benchmark": "average-AI", "free+fwd": 0.85},
        ]
        metrics = headline_metrics(
            SCALE, time_rows=fake_time, energy_rows=fake_energy
        )
        assert metrics.time_reduction_all_pct == pytest.approx(10.0)
        assert metrics.energy_reduction_ai_pct == pytest.approx(15.0)


class TestEnergyReport:
    def make_breakdowns(self):
        model = EnergyModel()
        workload = counter_workload(2, 20)
        config = small_system_config(2)
        return {
            policy.name: model.breakdown(
                run_workload(workload, policy=policy, config=config)
            )
            for policy in ALL_POLICIES
        }

    def test_component_rows_sum_to_total(self):
        breakdown = self.make_breakdowns()["baseline"]
        rows = component_rows(breakdown)
        assert rows[-1]["component"] == "TOTAL"
        parts = sum(
            row["energy_pj"] for row in rows if row["component"] != "TOTAL"
        )
        assert parts == pytest.approx(breakdown.total_pj)

    def test_policy_comparison_normalizes_baseline_to_one(self):
        rows = policy_comparison_rows(self.make_breakdowns())
        base = next(row for row in rows if row["policy"] == "baseline")
        assert base["normalized_total"] == pytest.approx(1.0)
        assert base["savings_pct"] == pytest.approx(0.0)


class TestCli:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["figure12", "--threads", "2"])
        assert args.experiment == "figure12"
        assert args.threads == 2

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "ROB / LQ / SQ" in out

    def test_figure12_with_subset_and_json(self, tmp_path, capsys):
        code = main(
            [
                "figure12",
                "--threads", "2",
                "--instrs", "400",
                "--benchmarks", "AS", "canneal",
                "--json-dir", str(tmp_path),
            ]
        )
        assert code == 0
        saved = json.loads((tmp_path / "figure12.json").read_text())
        assert {row["benchmark"] for row in saved} == {"AS", "canneal"}
        assert "Figure 12" in capsys.readouterr().out

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_jobs_flag_parsed(self):
        args = build_parser().parse_args(["figure12", "--jobs", "4"])
        assert args.jobs == 4

    def test_clear_cache_standalone(self, capsys):
        assert main(["--clear-cache"]) == 0
        assert "cleared" in capsys.readouterr().out

    def test_profile_out_dumps_raw_pstats(self, tmp_path, capsys):
        import pstats

        out = tmp_path / "hot" / "profile.pstats"
        code = main(
            [
                "--profile",
                "--profile-out", str(out),
                "--threads", "2",
                "--instrs", "120",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "cumulative" in printed  # table sorted by cumulative time
        assert str(out) in printed
        # The dump must round-trip through pstats without re-running.
        stats = pstats.Stats(str(out))
        assert stats.total_calls > 0

    def test_profile_out_requires_profile(self):
        with pytest.raises(SystemExit):
            main(["--profile-out", "x.pstats"])

    def test_no_experiment_without_clear_cache_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_parallel_jobs_flag_runs(self, capsys):
        code = main(
            [
                "figure12",
                "--threads", "2",
                "--instrs", "400",
                "--benchmarks", "AS", "canneal",
                "--jobs", "2",
            ]
        )
        assert code == 0
        assert "Figure 12" in capsys.readouterr().out


class TestTraceOut:
    def test_traced_litmus_writes_valid_chrome_json(self, tmp_path, capsys):
        from repro.obs import validate_trace

        out = tmp_path / "nested" / "trace.json"
        assert main(["--trace-out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "0 violation(s)" in printed and str(out) in printed
        payload = json.loads(out.read_text())
        assert validate_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"pipeline:commit", "aq:lock", "aq:unlock", "watchdog:arm"} <= names
        assert payload["otherData"]["health"]["audits"]["runs"] > 0

    def test_trace_litmus_selects_program(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            ["--trace-out", str(out), "--trace-litmus", "store_buffering"]
        )
        assert code == 0
        assert "litmus=store_buffering" in capsys.readouterr().out

    def test_unknown_litmus_rejected(self, tmp_path, capsys):
        code = main(
            ["--trace-out", str(tmp_path / "t.json"), "--trace-litmus", "nope"]
        )
        assert code == 2
        assert "available:" in capsys.readouterr().out
