"""Tests for the parallel experiment engine and result summaries.

The determinism-under-parallelism test is the load-bearing one: the
same point run serially, in a pool worker, and restored from the disk
cache must yield byte-identical ResultSummary JSON.
"""

import gc
import io
import pickle
from multiprocessing.reduction import ForkingPickler

import pytest

from repro.analysis.engine import (
    JOBS_ENV,
    batch_gc_tuning,
    effective_jobs,
    experiment_points,
    harness_points,
    prefetch,
    resolve_jobs,
    run_batch,
)
from repro.analysis.runner import (
    ExperimentScale,
    clear_cache,
    memoize,
    memoized,
    run_benchmark,
)
from repro.common.errors import ConfigError
from repro.core.policy import ALL_POLICIES, BASELINE, FREE_ATOMICS_FWD

SCALE = ExperimentScale(num_threads=2, instructions_per_thread=400)
POINT = ("AS", FREE_ATOMICS_FWD.name, SCALE, "icelake")


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield


class TestResolveJobs:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs() == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ConfigError):
            resolve_jobs()


class TestEffectiveJobs:
    """The harness records what actually ran, via effective_jobs."""

    def test_serial_for_one_point(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert effective_jobs(8, 1) == 1

    def test_capped_by_point_count(self):
        assert effective_jobs(8, 3) == 3

    def test_resolved_when_points_abound(self):
        assert effective_jobs(2, 12) == 2

    def test_serial_request_stays_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert effective_jobs(None, 12) == 1


class TestBatchRunner:
    def test_run_batch_dedups_and_memoizes(self):
        resolved = run_batch([POINT, POINT])
        assert set(resolved) == {POINT}
        assert memoized(*POINT) is resolved[POINT]

    def test_run_batch_skips_memoized(self):
        run_benchmark("AS", FREE_ATOMICS_FWD, SCALE)
        assert run_batch([POINT]) == {}

    def test_gc_tuning_restores_host_state(self):
        from repro.analysis.engine import _BATCH_GC_THRESHOLDS

        before = gc.get_threshold()
        with batch_gc_tuning():
            assert gc.get_threshold() == _BATCH_GC_THRESHOLDS
        assert gc.get_threshold() == before


class TestPointEnumeration:
    def test_figure1_has_both_presets(self):
        points = experiment_points("figure1", SCALE, benchmarks=["AS"])
        assert ("AS", BASELINE.name, SCALE, "skylake") in points
        assert ("AS", BASELINE.name, SCALE, "icelake") in points

    def test_figure14_has_all_policies(self):
        points = experiment_points("figure14", SCALE, benchmarks=["AS"])
        assert len(points) == len(ALL_POLICIES)
        assert ("AS", "versioned", SCALE, "icelake") in points

    def test_calibration_points_default_to_atomic_intensive(self):
        from repro.workloads.profiles import ATOMIC_INTENSIVE

        points = experiment_points("calibration", SCALE)
        assert points
        assert {p[0] for p in points} <= set(ATOMIC_INTENSIVE)
        assert {p[1] for p in points} == {"baseline", "free+fwd", "versioned"}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigError):
            experiment_points("figure99", SCALE)

    def test_harness_points_deduplicated(self):
        points = harness_points(SCALE, benchmarks=["AS", "watersp"])
        assert len(points) == len(set(points))

    def test_harness_points_cover_ablations(self):
        points = harness_points(SCALE)
        aq1 = [p for p in points if p[2].aq_entries == 1]
        assert aq1, "ablation scales missing from full-harness prefetch"


class TestMemoHelpers:
    def test_memoize_roundtrip(self):
        summary = run_benchmark("AS", FREE_ATOMICS_FWD, SCALE)
        clear_cache()
        assert memoized(*POINT) is None
        memoize(*POINT, summary=summary)
        assert memoized(*POINT) is summary
        # run_benchmark now returns the deposited object without running.
        assert run_benchmark("AS", FREE_ATOMICS_FWD, SCALE) is summary


class TestPrefetch:
    def test_serial_prefetch_populates_memo(self):
        resolved = prefetch([POINT], jobs=1)
        assert set(resolved) == {POINT}
        assert memoized(*POINT) is resolved[POINT]

    def test_prefetch_skips_memoized(self):
        run_benchmark("AS", FREE_ATOMICS_FWD, SCALE)
        assert prefetch([POINT], jobs=1) == {}

    def test_pool_prefetch_populates_memo(self):
        other = ("watersp", FREE_ATOMICS_FWD.name, SCALE, "icelake")
        resolved = prefetch([POINT, other], jobs=2)
        assert set(resolved) == {POINT, other}
        assert memoized(*other) is not None


class TestDeterminismUnderParallelism:
    """Serial, pool-worker, and disk-restored runs are byte-identical."""

    def test_three_way_identical_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))

        # Serial, disk cache off: pure simulation.
        monkeypatch.setenv("REPRO_CACHE", "off")
        serial = run_benchmark("AS", FREE_ATOMICS_FWD, SCALE).canonical_json()

        # Pool workers, disk cache on (workers also persist the entries).
        monkeypatch.setenv("REPRO_CACHE", "on")
        clear_cache()
        other = ("watersp", FREE_ATOMICS_FWD.name, SCALE, "icelake")
        pooled = prefetch([POINT, other], jobs=2)[POINT].canonical_json()

        # Fresh memo: restored from the disk entry the worker wrote.
        clear_cache()
        restored = run_benchmark("AS", FREE_ATOMICS_FWD, SCALE).canonical_json()

        assert serial == pooled
        assert serial == restored

    def test_summary_json_roundtrip_is_identity(self):
        from repro.system.summary import ResultSummary

        summary = run_benchmark("AS", BASELINE, SCALE)
        restored = ResultSummary.from_json_dict(summary.to_json_dict())
        assert restored.canonical_json() == summary.canonical_json()
        assert restored.cycles == summary.cycles
        assert restored.stats.aggregate("committed") == (
            summary.stats.aggregate("committed")
        )

    def test_obs_summary_survives_engine_pickling(self):
        """meta['health'] must survive the pool's pickle transport.

        The parallel engine ships ResultSummary objects between worker
        and parent via multiprocessing's ForkingPickler; an
        observability-attached summary carries the (nested, dict-heavy)
        run-health report in ``meta['health']``, which is exactly the
        part a lossy ``__reduce__`` or a non-picklable leak (a bound
        method, a live core) would corrupt first.
        """
        from repro.analysis.runner import bench_system_config, bench_workload
        from repro.obs.attach import Observability
        from repro.system.simulator import run_workload

        workload = bench_workload("AS", SCALE)
        config = bench_system_config(SCALE)
        result = run_workload(
            workload,
            policy=FREE_ATOMICS_FWD,
            config=config,
            observability=Observability(),
        )
        summary = result.summary(meta={"benchmark": "AS"})
        assert "health" in summary.meta

        buffer = io.BytesIO()
        ForkingPickler(buffer).dump(summary)
        restored = pickle.loads(buffer.getvalue())
        assert restored.meta["health"] == summary.meta["health"]
        assert restored.canonical_json() == summary.canonical_json()
