"""Environment-variable scaling and ExperimentScale hygiene."""

from repro.analysis.runner import (
    BENCH_WATCHDOG_CYCLES,
    ExperimentScale,
)


class TestFromEnv:
    def test_defaults_without_env(self, monkeypatch):
        for var in ("REPRO_BENCH_THREADS", "REPRO_BENCH_INSTRS", "REPRO_BENCH_SEED"):
            monkeypatch.delenv(var, raising=False)
        scale = ExperimentScale.from_env()
        assert scale.num_threads == 8
        assert scale.instructions_per_thread == 2500
        assert scale.seed == 42

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_THREADS", "16")
        monkeypatch.setenv("REPRO_BENCH_INSTRS", "6000")
        monkeypatch.setenv("REPRO_BENCH_SEED", "7")
        scale = ExperimentScale.from_env()
        assert scale.num_threads == 16
        assert scale.instructions_per_thread == 6000
        assert scale.seed == 7

    def test_watchdog_default_is_documented_scaling(self):
        assert ExperimentScale().watchdog_cycles == BENCH_WATCHDOG_CYCLES == 2000


class TestHashability:
    def test_scale_is_hashable_cache_key(self):
        a = ExperimentScale(num_threads=2)
        b = ExperimentScale(num_threads=2)
        assert a == b and hash(a) == hash(b)
        assert a != ExperimentScale(num_threads=4)

    def test_workload_scale_projection(self):
        scale = ExperimentScale(num_threads=3, instructions_per_thread=900, seed=5)
        ws = scale.workload_scale
        assert (ws.num_threads, ws.instructions_per_thread, ws.seed) == (3, 900, 5)
