"""Environment-variable scaling and ExperimentScale hygiene."""

import pytest

from repro.analysis.runner import (
    BENCH_WATCHDOG_CYCLES,
    ExperimentScale,
    config_digest,
    disk_cache_key,
)
from repro.analysis.runner import bench_system_config as make_bench_config
from repro.common.errors import ConfigError


class TestFromEnv:
    def test_defaults_without_env(self, monkeypatch):
        for var in ("REPRO_BENCH_THREADS", "REPRO_BENCH_INSTRS", "REPRO_BENCH_SEED"):
            monkeypatch.delenv(var, raising=False)
        scale = ExperimentScale.from_env()
        assert scale.num_threads == 8
        assert scale.instructions_per_thread == 2500
        assert scale.seed == 42

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_THREADS", "16")
        monkeypatch.setenv("REPRO_BENCH_INSTRS", "6000")
        monkeypatch.setenv("REPRO_BENCH_SEED", "7")
        scale = ExperimentScale.from_env()
        assert scale.num_threads == 16
        assert scale.instructions_per_thread == 6000
        assert scale.seed == 7

    def test_watchdog_default_is_documented_scaling(self):
        assert ExperimentScale().watchdog_cycles == BENCH_WATCHDOG_CYCLES == 2000

    def test_free_atomics_knob_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WATCHDOG", "5000")
        monkeypatch.setenv("REPRO_BENCH_AQ", "2")
        monkeypatch.setenv("REPRO_BENCH_FWD_CHAIN", "8")
        scale = ExperimentScale.from_env()
        assert scale.watchdog_cycles == 5000
        assert scale.aq_entries == 2
        assert scale.max_forward_chain == 8

    @pytest.mark.parametrize(
        "var",
        [
            "REPRO_BENCH_THREADS",
            "REPRO_BENCH_INSTRS",
            "REPRO_BENCH_WATCHDOG",
            "REPRO_BENCH_AQ",
            "REPRO_BENCH_FWD_CHAIN",
        ],
    )
    def test_non_integer_rejected(self, monkeypatch, var):
        monkeypatch.setenv(var, "not-a-number")
        with pytest.raises(ConfigError, match=var):
            ExperimentScale.from_env()

    def test_out_of_range_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_AQ", "0")
        with pytest.raises(ConfigError, match="REPRO_BENCH_AQ"):
            ExperimentScale.from_env()

    def test_empty_value_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_AQ", "")
        assert ExperimentScale.from_env().aq_entries == 4


class TestCacheKeys:
    def test_digest_reflects_config_edits(self):
        scale = ExperimentScale(num_threads=2)
        config = make_bench_config(scale)
        edited = config.replace(max_cycles=config.max_cycles + 1)
        assert config_digest(config) != config_digest(edited)

    def test_disk_key_depends_on_config_digest_not_just_preset(self):
        """Editing icelake_config can never serve a stale cached result."""
        scale = ExperimentScale(num_threads=2)
        digest = config_digest(make_bench_config(scale))
        key = disk_cache_key("AS", "baseline", scale, "icelake", digest)
        other = disk_cache_key("AS", "baseline", scale, "icelake", "deadbeef")
        assert key != other

    def test_disk_key_depends_on_scale_fields(self):
        scale = ExperimentScale(num_threads=2)
        varied = ExperimentScale(num_threads=2, aq_entries=2)
        digest = config_digest(make_bench_config(scale))
        assert disk_cache_key("AS", "baseline", scale, "icelake", digest) != (
            disk_cache_key("AS", "baseline", varied, "icelake", digest)
        )

    def test_sim_code_version_bump_misses_cache(self, tmp_path, monkeypatch):
        """A summary cached by older core code can never be served.

        Simulates a core-semantics change landing between releases:
        the entry written under the old ``SIM_CODE_VERSION`` must be a
        miss (not a hit, not an error) once the version is bumped.
        """
        import repro.analysis.runner as runner_module
        from repro.common.cache import ResultCache

        scale = ExperimentScale(num_threads=2)
        digest = config_digest(make_bench_config(scale))
        cache = ResultCache(tmp_path)

        old_key = disk_cache_key("AS", "baseline", scale, "icelake", digest)
        cache.put(old_key, {"cycles": 123})
        assert cache.get(old_key) == {"cycles": 123}

        monkeypatch.setattr(
            runner_module,
            "SIM_CODE_VERSION",
            runner_module.SIM_CODE_VERSION + 1,
        )
        new_key = disk_cache_key("AS", "baseline", scale, "icelake", digest)
        assert new_key != old_key
        assert cache.get(new_key) is None


class TestHashability:
    def test_scale_is_hashable_cache_key(self):
        a = ExperimentScale(num_threads=2)
        b = ExperimentScale(num_threads=2)
        assert a == b and hash(a) == hash(b)
        assert a != ExperimentScale(num_threads=4)

    def test_workload_scale_projection(self):
        scale = ExperimentScale(num_threads=3, instructions_per_thread=900, seed=5)
        ws = scale.workload_scale
        assert (ws.num_threads, ws.instructions_per_thread, ws.seed) == (3, 900, 5)
