"""Tests for the experiment runner and figure/table computation.

These use a tiny scale and a two-benchmark subset so the whole module
runs in seconds; the full 26-benchmark sweeps live in benchmarks/.
"""

import pytest

from repro.analysis.figures import (
    figure1_rows,
    figure12_rows,
    figure13_rows,
    figure14_rows,
    figure15_rows,
)
from repro.analysis.report import format_table
from repro.analysis.runner import (
    ExperimentScale,
    clear_cache,
    run_benchmark,
)
from repro.analysis.runner import bench_system_config as make_bench_config
from repro.analysis.tables import table1_rows, table2_rows
from repro.core.policy import BASELINE, FREE_ATOMICS_FWD

SCALE = ExperimentScale(num_threads=2, instructions_per_thread=500)
SUBSET = ["AS", "watersp"]


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield


class TestRunner:
    def test_memoization(self):
        first = run_benchmark("AS", BASELINE, SCALE)
        second = run_benchmark("AS", BASELINE, SCALE)
        assert first is second

    def test_different_policies_not_conflated(self):
        base = run_benchmark("AS", BASELINE, SCALE)
        free = run_benchmark("AS", FREE_ATOMICS_FWD, SCALE)
        assert base is not free
        assert base.policy is BASELINE

    def test_bench_config_applies_scale(self):
        config = make_bench_config(SCALE)
        assert config.num_cores == 2
        assert config.free_atomics.watchdog_cycles == SCALE.watchdog_cycles

    def test_skylake_preset_rob(self):
        config = make_bench_config(SCALE, core_preset="skylake")
        assert config.core.rob_entries == 224


class TestFigures:
    def test_figure1_has_presets_and_average(self):
        rows = figure1_rows(SCALE, benchmarks=SUBSET)
        assert [r["benchmark"] for r in rows] == SUBSET + ["average"]
        for row in rows:
            assert row["icelake_total"] >= 0
            assert row["skylake_total"] >= 0

    def test_figure12_reports_apki(self):
        rows = figure12_rows(SCALE, benchmarks=SUBSET)
        by_name = {r["benchmark"]: r for r in rows}
        assert by_name["AS"]["atomic_intensive"]
        assert not by_name["watersp"]["atomic_intensive"]
        assert by_name["AS"]["apki"] > by_name["watersp"]["apki"]

    def test_figure13_locality_improves(self):
        rows = figure13_rows(SCALE, benchmarks=["AS"])
        row = rows[0]
        assert 0 <= row["baseline_total"] <= 1
        assert 0 <= row["free_total"] <= 1
        assert row["free_total"] >= row["baseline_total"]

    def test_figure14_baseline_normalized_to_one(self):
        rows = figure14_rows(SCALE, benchmarks=SUBSET)
        for row in rows:
            if row["benchmark"] in SUBSET:
                assert row["baseline"] == pytest.approx(1.0)
                assert 0 < row["free+fwd_active_frac"] <= 1.0
        labels = [r["benchmark"] for r in rows]
        assert "average" in labels and "average-AI" in labels

    def test_figure15_energy_normalized(self):
        rows = figure15_rows(SCALE, benchmarks=["AS"])
        row = rows[0]
        assert row["baseline"] == pytest.approx(1.0)
        assert row["free+fwd"] == pytest.approx(
            row["free+fwd_dynamic"] + row["free+fwd_static"]
        )


class TestTables:
    def test_table2_columns(self):
        rows = table2_rows(SCALE, benchmarks=SUBSET)
        assert rows[-1]["benchmark"] == "average"
        for row in rows:
            assert 0 <= row["omitted_fences_pct"] <= 100
            assert 0 <= row["mdv_pct_squashes"] <= 100
            assert 0 <= row["fba_pct_atomics"] <= 100

    def test_table2_fences_mostly_omitted(self):
        rows = table2_rows(SCALE, benchmarks=["AS"])
        assert rows[0]["omitted_fences_pct"] > 90

    def test_table1_echoes_config(self):
        rows = table1_rows(make_bench_config(SCALE))
        text = format_table(rows, "Table 1")
        assert "ROB / LQ / SQ" in text
        assert "352" in text


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 1.23456}, {"a": 22, "b": 0.5}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.235" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="X")
