"""Crashed-worker recovery in the parallel engine.

A SIGKILLed (OOM'd, segfaulted) worker breaks the whole
``ProcessPoolExecutor`` — before this fix, ``prefetch`` let
``BrokenProcessPool`` propagate and a whole sweep's completed points
were lost.  Now the pool is rebuilt (bounded) and only unfinished
points are resubmitted; an exhausted budget surfaces
:class:`PartialSweepError` carrying the completed summaries.
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
import signal
import time

import pytest

from repro.analysis import engine
from repro.analysis.engine import (
    _reset_pool_rebuilds,
    pool_rebuild_count,
    prefetch,
)
from repro.analysis.runner import ExperimentScale, clear_cache
from repro.common.errors import PartialSweepError
from repro.core.policy import BASELINE, FREE_ATOMICS_FWD

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="crash-injection workers rely on fork inheritance",
)

#: Benchmark whose point the injected fault targets.
CRASH_BENCHMARK = "AS"

_original_run_point = engine._run_point


def _crash_once_run_point(point):
    """SIGKILL this worker the first time it sees the crash point."""
    flag = pathlib.Path(os.environ["REPRO_TEST_CRASH_FLAG"])
    if point[0] == CRASH_BENCHMARK and not flag.exists():
        flag.touch()
        os.kill(os.getpid(), signal.SIGKILL)
    return _original_run_point(point)


def _crash_always_run_point(point):
    """SIGKILL on the crash point, every attempt — after a beat, so
    concurrently-running good points get a chance to finish first."""
    if point[0] == CRASH_BENCHMARK:
        time.sleep(0.5)
        os.kill(os.getpid(), signal.SIGKILL)
    return _original_run_point(point)


def _points(seed: int) -> list:
    scale = ExperimentScale(num_threads=2, instructions_per_thread=120, seed=seed)
    return [
        (name, policy.name, scale, "icelake")
        for name in ("AS", "watersp", "CQ", "TATP")
        for policy in (FREE_ATOMICS_FWD,)
    ]


@pytest.fixture(autouse=True)
def _fresh(monkeypatch, tmp_path):
    clear_cache()
    _reset_pool_rebuilds()
    monkeypatch.setenv("REPRO_TEST_CRASH_FLAG", str(tmp_path / "crashed"))
    yield
    clear_cache()


def test_prefetch_survives_one_worker_crash(monkeypatch):
    monkeypatch.setattr(engine, "_run_point", _crash_once_run_point)
    seed = int.from_bytes(os.urandom(2), "big")
    points = _points(seed)
    resolved = prefetch(points, jobs=2)
    assert set(resolved) == set(points)  # nothing dropped, crash point retried
    assert pool_rebuild_count() == 1
    assert all(summary.cycles > 0 for summary in resolved.values())


def test_prefetch_exhausted_budget_surfaces_partial_result(monkeypatch):
    monkeypatch.setattr(engine, "_run_point", _crash_always_run_point)
    seed = int.from_bytes(os.urandom(2), "big")
    points = _points(seed)
    crash_points = [p for p in points if p[0] == CRASH_BENCHMARK]
    with pytest.raises(PartialSweepError) as excinfo:
        prefetch(points, jobs=2, pool_rebuilds=1)
    error = excinfo.value
    assert set(crash_points) <= set(error.failed)
    # Completed points are carried on the error, not thrown away...
    assert set(error.completed) <= set(points)
    assert set(error.completed).isdisjoint(error.failed)
    # ...and they were memoized on the way, so a retry skips them.
    from repro.analysis.runner import memoized

    for point in error.completed:
        assert memoized(*point) is not None


def test_serial_prefetch_unaffected():
    seed = int.from_bytes(os.urandom(2), "big")
    scale = ExperimentScale(num_threads=2, instructions_per_thread=100, seed=seed)
    points = [("AS", BASELINE.name, scale, "icelake")]
    resolved = prefetch(points, jobs=1)
    assert set(resolved) == set(points)
    assert pool_rebuild_count() == 0
