"""Every repro.* module must import cleanly in isolation.

Regression test for a latent import cycle: ``repro.consistency``
eagerly imported ``litmus`` (which needs the simulator) while the
simulator imports ``repro.consistency.model`` for trace types — so
``import repro.consistency`` worked or failed depending on what had
been imported first.  The package now lazy-loads its submodules
(PEP 562); this test keeps it that way by importing every module as
the *first* repro import of a pristine interpreter state.
"""

import importlib
import pkgutil
import sys

import pytest

import repro


def all_module_names():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith(".__main__"):
            continue  # entry points call sys.exit on import
        names.append(info.name)
    return sorted(names)


MODULES = all_module_names()


def test_module_discovery_found_the_tree():
    assert "repro.consistency.model" in MODULES
    assert "repro.uarch.core" in MODULES
    assert len(MODULES) > 25


@pytest.mark.parametrize("name", MODULES)
def test_imports_in_isolation(name):
    saved = {
        key: sys.modules.pop(key)
        for key in list(sys.modules)
        if key == "repro" or key.startswith("repro.")
    }
    try:
        importlib.import_module(name)
    finally:
        for key in list(sys.modules):
            if key == "repro" or key.startswith("repro."):
                del sys.modules[key]
        sys.modules.update(saved)
