"""End-to-end tests of ``python -m repro.consistency``."""

import json

from repro.consistency.cli import build_parser, main
from repro.consistency.shrink import rerun_repro
from repro.core.policy import ALL_POLICIES


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.tests == 200
        assert args.seed == 0
        assert args.policies is None
        assert not args.shrink

    def test_policy_list(self):
        args = build_parser().parse_args(["--policies", "baseline,free"])
        assert args.policies == "baseline,free"


class TestCleanSweep:
    def test_exit_zero_and_deterministic_report(self, tmp_path, capsys):
        argv = [
            "--tests", "5", "--seed", "0", "--jobs", "1",
            "--report", str(tmp_path / "report.json"), "--quiet",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "OK:" in out and "all admissible under x86-TSO" in out

        first = (tmp_path / "report.json").read_text()
        payload = json.loads(first)
        assert payload["violations"] == 0
        assert payload["runs"] == 5 * len(ALL_POLICIES)

        assert main(argv) == 0
        assert (tmp_path / "report.json").read_text() == first


class TestViolationPath:
    def test_violations_fail_shrink_and_write_repros(
        self, bypassing_loads, tmp_path, capsys
    ):
        # Seed 1 produces a mutant-visible violation within 6 tests.
        repro_dir = tmp_path / "repros"
        rc = main(
            [
                "--tests", "6", "--seed", "1", "--jobs", "1",
                "--policies", "free+fwd", "--shrink",
                "--repro-dir", str(repro_dir),
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "VIOLATION:" in out and "shrunk" in out

        repros = sorted(repro_dir.glob("*.json"))
        assert repros
        # Repro files replay to a still-violating case (the mutation is
        # still active inside this fixture's scope).
        assert rerun_repro(repros[0]).violations
