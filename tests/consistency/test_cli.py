"""End-to-end tests of ``python -m repro.consistency``."""

import json

from repro.consistency.cli import build_parser, main
from repro.consistency.fuzz import FENCED_BASELINE_NAME
from repro.consistency.shrink import rerun_repro
from repro.core.policy import ALL_POLICIES, policy_names


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.tests == 200
        assert args.seed == 0
        assert args.policies is None
        assert not args.shrink

    def test_policy_list(self):
        args = build_parser().parse_args(["--policies", "baseline,free"])
        assert args.policies == "baseline,free"

    def test_help_lists_every_registered_policy(self):
        # The help string is derived from ALL_POLICIES: registering a
        # policy must surface it here without editing the CLI.
        help_text = build_parser().format_help()
        for name in policy_names():
            assert name in help_text
        assert "versioned" in help_text
        assert "all four" not in help_text


class TestCleanSweep:
    def test_exit_zero_and_deterministic_report(self, tmp_path, capsys):
        argv = [
            "--tests", "5", "--seed", "0", "--jobs", "1",
            "--report", str(tmp_path / "report.json"), "--quiet",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "OK:" in out and "all admissible under x86-TSO" in out

        first = (tmp_path / "report.json").read_text()
        payload = json.loads(first)
        assert payload["violations"] == 0
        # Every registered policy plus the fence-insertion baseline.
        assert payload["runs"] == 5 * (len(ALL_POLICIES) + 1)
        assert payload["policies"] == [
            *(p.name for p in ALL_POLICIES), FENCED_BASELINE_NAME,
        ]

        assert main(argv) == 0
        assert (tmp_path / "report.json").read_text() == first

    def test_no_fenced_baseline_flag(self, tmp_path):
        argv = [
            "--tests", "3", "--seed", "0", "--jobs", "1",
            "--no-fenced-baseline",
            "--report", str(tmp_path / "report.json"), "--quiet",
        ]
        assert main(argv) == 0
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["runs"] == 3 * len(ALL_POLICIES)
        assert FENCED_BASELINE_NAME not in payload["policies"]


class TestViolationPath:
    def test_violations_fail_shrink_and_write_repros(
        self, bypassing_loads, tmp_path, capsys
    ):
        # Seed 1 produces a mutant-visible violation within 6 tests.
        repro_dir = tmp_path / "repros"
        rc = main(
            [
                "--tests", "6", "--seed", "1", "--jobs", "1",
                "--policies", "free+fwd", "--shrink",
                "--repro-dir", str(repro_dir),
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "VIOLATION:" in out and "shrunk" in out

        repros = sorted(repro_dir.glob("*.json"))
        assert repros
        # Repro files replay to a still-violating case (the mutation is
        # still active inside this fixture's scope).
        assert rerun_repro(repros[0]).violations
