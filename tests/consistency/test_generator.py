"""Tests for the litmus generator and its model-derived outcome oracle."""

import pytest

from repro.consistency.generator import (
    AbsOp,
    GeneratedTest,
    SHAPE_FAMILIES,
    derive_oracle,
    enumerate_outcomes,
    generate_tests,
    loc_address,
    out_slot,
)


def make(threads, initial=()):
    return derive_oracle(
        GeneratedTest(name="t", threads=threads, initial=initial)
    )


def outcome(**kv):
    return tuple(sorted(kv.items()))


SB = (
    (AbsOp("store", loc=0, value=1), AbsOp("load", loc=1)),
    (AbsOp("store", loc=1, value=1), AbsOp("load", loc=0)),
)

SB_FENCED = (
    (AbsOp("store", loc=0, value=1), AbsOp("fence"), AbsOp("load", loc=1)),
    (AbsOp("store", loc=1, value=1), AbsOp("fence"), AbsOp("load", loc=0)),
)


class TestOracleKnownShapes:
    def test_sb_relaxed_outcome_allowed_but_not_sc(self):
        test = make(SB)
        relaxed = {"r0.1": 0, "r1.1": 0, "m0": 1, "m1": 1}
        assert outcome(**relaxed) in test.allowed
        assert outcome(**relaxed) not in test.sc_allowed
        assert test.interesting(outcome(**relaxed))

    def test_sb_all_four_read_pairs_reachable(self):
        test = make(SB)
        pairs = {
            (dict(o)["r0.1"], dict(o)["r1.1"]) for o in test.allowed
        }
        assert pairs == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_fenced_sb_forbids_0_0(self):
        test = make(SB_FENCED)
        assert outcome(**{"r0.2": 0, "r1.2": 0, "m0": 1, "m1": 1}) not in test.allowed
        # With fences TSO collapses to the SC outcome set here.
        assert test.allowed == test.sc_allowed

    def test_rmw_barrier_forbids_0_0(self):
        threads = (
            (
                AbsOp("store", loc=0, value=1),
                AbsOp("fetch_add", loc=2, value=1),
                AbsOp("load", loc=1),
            ),
            (
                AbsOp("store", loc=1, value=1),
                AbsOp("fetch_add", loc=3, value=1),
                AbsOp("load", loc=0),
            ),
        )
        test = make(threads)
        for o in test.allowed:
            values = dict(o)
            assert not (values["r0.2"] == 0 and values["r1.2"] == 0)

    def test_mp_no_stale_data_after_flag(self):
        threads = (
            (AbsOp("store", loc=0, value=42), AbsOp("store", loc=1, value=1)),
            (AbsOp("load", loc=1), AbsOp("load", loc=0)),
        )
        test = make(threads)
        for o in test.allowed:
            values = dict(o)
            if values["r1.0"] == 1:
                assert values["r1.1"] == 42

    def test_no_lost_fetch_add_updates(self):
        threads = (
            (AbsOp("fetch_add", loc=0, value=1),),
            (AbsOp("fetch_add", loc=0, value=1),),
        )
        test = make(threads)
        for o in test.allowed:
            values = dict(o)
            assert values["m0"] == 2
            assert {values["r0.0"], values["r1.0"]} == {0, 1}

    def test_cas_x86_semantics_always_reads(self):
        # cmpxchg observes the old value whether or not it matches.
        threads = (
            (AbsOp("cas", loc=0, value=9, expected=5),),
        )
        hit = make(threads, initial=((0, 5),))
        assert hit.allowed == {outcome(**{"r0.0": 5, "m0": 9})}
        miss = make(threads, initial=((0, 3),))
        assert miss.allowed == {outcome(**{"r0.0": 3, "m0": 3})}

    def test_own_store_always_visible_to_own_load(self):
        threads = ((AbsOp("store", loc=0, value=7), AbsOp("load", loc=0)),)
        test = make(threads)
        assert test.allowed == {outcome(**{"r0.1": 7, "m0": 7})}

    def test_initial_memory_respected(self):
        test = make(((AbsOp("load", loc=1),),), initial=((1, 13),))
        assert test.allowed == {outcome(**{"r0.0": 13, "m1": 13})}

    def test_state_cap_raises(self):
        big = tuple(
            tuple(AbsOp("store", loc=0, value=j + 1) for j in range(8))
            for _ in range(3)
        )
        with pytest.raises(RuntimeError):
            enumerate_outcomes(big, {}, max_states=100)


class TestGeneration:
    def test_deterministic_and_oracle_equipped(self):
        a = generate_tests(20, 3)
        b = generate_tests(20, 3)
        assert [t.to_jsonable() for t in a] == [t.to_jsonable() for t in b]
        assert [t.allowed for t in a] == [t.allowed for t in b]
        for test in a:
            assert test.allowed, f"{test.name}: empty outcome set"
            assert test.sc_allowed <= test.allowed

    def test_different_seeds_differ(self):
        a = [t.to_jsonable() for t in generate_tests(20, 0)]
        b = [t.to_jsonable() for t in generate_tests(20, 1)]
        assert a != b

    def test_every_family_appears(self):
        names = {t.name.rsplit("_", 1)[0] for t in generate_tests(14, 0)}
        assert names == {"sb", "mp", "lb", "wrc", "rmw_mix", "random"}
        assert len(SHAPE_FAMILIES) == 7

    def test_prefix_stability(self):
        # Test i is a pure function of (seed, i): growing the count
        # never changes earlier tests (cache/shard friendliness).
        short = generate_tests(5, 11)
        long = generate_tests(15, 11)
        assert [t.to_jsonable() for t in short] == [
            t.to_jsonable() for t in long[:5]
        ]


class TestBuildAndLayout:
    def test_build_produces_runnable_workload(self):
        test = make(SB)
        workload = test.build()
        assert workload.num_threads == 2
        assert workload.initial_memory == {}

    def test_pads_inject_nops(self):
        test = make(SB)
        plain = test.build()
        padded = test.build(pads=((3, 0), (0, 5)))
        assert len(padded.programs[0]) == len(plain.programs[0]) + 3
        assert len(padded.programs[1]) == len(plain.programs[1]) + 5

    def test_observation_layout_distinct_addresses(self):
        test = make(SB, initial=((2, 5),))
        layout = test.observations()
        assert len(set(layout.values())) == len(layout)
        assert layout["r0.1"] == out_slot(0, 0)
        assert layout["m2"] == loc_address(2)

    def test_serialization_round_trip(self):
        for test in generate_tests(10, 5):
            clone = GeneratedTest.from_jsonable(test.to_jsonable())
            assert clone.threads == test.threads
            assert clone.initial == test.initial
            assert clone.allowed == test.allowed
            assert clone.sc_allowed == test.sc_allowed
