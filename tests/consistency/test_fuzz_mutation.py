"""Mutation smoke test: the fuzzer must catch a broken memory system.

A green fuzz run only means something if an *un*-green simulator would
have failed it.  This suite injects a deliberate consistency bug — a
shim around :func:`repro.core.forwarding.decide_load_source` that sends
every regular load straight to the cache, bypassing older same-address
stores still sitting in the store queue — and asserts that a small
fixed-seed fuzz sweep flags it, and that the shrinker then reduces the
first violating case to a tiny reproducible program.

The shim (the ``bypassing_loads`` fixture in ``conftest.py``) patches
the name *used by the core*, so it exercises exactly the seam a real
regression would flow through.
"""

from repro.consistency.fuzz import fuzz, knobs_for, run_case
from repro.consistency.generator import generate_tests
from repro.consistency.shrink import (
    load_repro,
    rerun_repro,
    shrink_case,
    write_repro,
)
from repro.core.policy import FREE_ATOMICS_FWD

MUTANT_TESTS = 50
MUTANT_SEED = 42


def mutant_report():
    tests = generate_tests(MUTANT_TESTS, MUTANT_SEED)
    # jobs=1 is load-bearing: the monkeypatch lives in this process
    # only and must not be bypassed by ProcessPoolExecutor workers.
    report = fuzz(tests, policies=(FREE_ATOMICS_FWD,), seed=MUTANT_SEED, jobs=1)
    return tests, report


class TestMutationIsCaught:
    def test_broken_forwarding_is_flagged(self, bypassing_loads):
        _, report = mutant_report()
        assert not report.ok, (
            "the fuzzer passed a simulator whose loads bypass the store "
            "buffer — the differential check has no teeth"
        )
        kinds = {v.kind for r in report.violating for v in r.violations}
        assert kinds <= {"forbidden-outcome", "inadmissible-trace", "crash"}
        # This particular bug yields impossible values, so at least the
        # outcome oracle must fire (the trace oracle usually fires too).
        assert "forbidden-outcome" in kinds

    def test_shrinks_to_a_tiny_core(self, bypassing_loads, tmp_path):
        tests, report = mutant_report()
        record = report.violating[0]
        knobs = knobs_for(tests, MUTANT_SEED)[record.test_index]
        result = shrink_case(
            tests[record.test_index], FREE_ATOMICS_FWD, knobs
        )
        assert result.num_ops <= 8, (
            f"shrunk case still has {result.num_ops} abstract ops: "
            f"{result.test.threads}"
        )
        assert result.probes > 0 and result.steps

        # The minimized case must still reproduce, and survive a trip
        # through a repro file.
        fresh = run_case(result.test, result.policy, result.knobs)
        assert fresh.violations
        path = write_repro(
            tmp_path / "mutant.json",
            result.test,
            result.policy,
            result.knobs,
            record=fresh,
            seed=MUTANT_SEED,
        )
        test, policy, knobs = load_repro(path)
        assert test.threads == result.test.threads
        assert policy.name == FREE_ATOMICS_FWD.name
        assert knobs == result.knobs
        assert rerun_repro(path).violations


class TestMutationScopedCorrectly:
    def test_same_sweep_is_clean_without_the_mutation(self):
        # Guards against the smoke test passing for the wrong reason
        # (e.g. the seed producing violations on a healthy simulator).
        _, report = mutant_report()
        assert report.ok
