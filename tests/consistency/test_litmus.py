"""Consistency validation through the litmus catalogue."""

import pytest

from repro.consistency.litmus import LITMUS_TESTS, run_litmus, sweep_litmus
from repro.core.policy import ALL_POLICIES, FREE_ATOMICS_FWD
from tests.conftest import small_system_config

PADS = (0, 3, 8)


def small_config(test):
    return small_system_config(num_cores=test.num_threads, watchdog_cycles=400)


class TestCatalogue:
    def test_expected_tests_present(self):
        assert {
            "store_buffering",
            "store_buffering_fenced",
            "dekker_atomics",
            "message_passing",
            "atomic_increment",
            "coherence_rr",
        } <= set(LITMUS_TESTS)


@pytest.mark.parametrize("name", sorted(LITMUS_TESTS), ids=str)
class TestForbiddenOutcomes:
    def test_no_forbidden_outcome_any_policy(self, name):
        test = LITMUS_TESTS[name]
        result = sweep_litmus(test, pad_values=PADS, config=small_config(test))
        assert result.runs == len(ALL_POLICIES) * len(PADS) ** 2
        assert result.ok, f"forbidden outcome observed: {result.outcomes}"


class TestRelaxationIsReal:
    def test_store_buffering_relaxation_observed(self):
        # TSO allows both loads to miss the other store (SB).  If this
        # never happens the simulator is accidentally SC and the paper's
        # problem statement would be vacuous here.
        test = LITMUS_TESTS["store_buffering"]
        result = sweep_litmus(
            test, pad_values=(0, 1, 2, 3, 5, 8), config=small_config(test)
        )
        assert result.interesting_count > 0

    def test_fence_kills_the_relaxation(self):
        test = LITMUS_TESTS["store_buffering_fenced"]
        result = sweep_litmus(
            test, pad_values=(0, 1, 2, 3, 5, 8), config=small_config(test)
        )
        assert result.forbidden_count == 0


class TestSingleRuns:
    def test_run_litmus_returns_observations(self):
        test = LITMUS_TESTS["dekker_atomics"]
        observations = run_litmus(
            test, FREE_ATOMICS_FWD, pads=[0, 0], config=small_config(test)
        )
        assert set(observations) == {"r0", "r1"}
        assert not (observations["r0"] == 0 and observations["r1"] == 0)

    def test_atomic_increment_exact(self):
        test = LITMUS_TESTS["atomic_increment"]
        observations = run_litmus(
            test, FREE_ATOMICS_FWD, pads=[0] * 4, config=small_config(test)
        )
        assert observations["counter"] == 4 * 24
