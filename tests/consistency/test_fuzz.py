"""Fuzzer determinism and clean-run behaviour.

The determinism satellite: the same seed must produce byte-identical
generated programs, knob draws and report JSON no matter how many
worker processes run the cases — otherwise repro files and the CI
smoke-fuzz gate would be lies.
"""

import json

import pytest

from repro.consistency.fuzz import (
    FENCED_BASELINE_NAME,
    draw_knobs,
    fuzz,
    fuzz_base_config,
    knobs_for,
    resolve_policies,
    run_case,
)
from repro.consistency.generator import generate_tests
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.core.policy import ALL_POLICIES, BASELINE, FREE_ATOMICS

TESTS = 12
SEED = 20260806


def report_bytes(jobs):
    tests = generate_tests(TESTS, SEED)
    report = fuzz(tests, policies=ALL_POLICIES, seed=SEED, jobs=jobs)
    return json.dumps(report.to_jsonable(), sort_keys=True)


class TestDeterminism:
    def test_reports_identical_across_jobs(self):
        serial = report_bytes(jobs=1)
        parallel = report_bytes(jobs=2)
        assert serial == parallel

    def test_knob_draws_are_pure_functions_of_seed_and_index(self):
        tests = generate_tests(TESTS, SEED)
        a = knobs_for(tests, SEED)
        b = knobs_for(tests, SEED)
        assert [k.to_jsonable() for k in a] == [k.to_jsonable() for k in b]
        # Order independence: drawing only test 5's knobs gives the
        # same result as drawing all of them.
        solo = draw_knobs(DeterministicRng(SEED).fork(5), tests[5])
        assert solo == a[5]

    def test_different_seeds_draw_different_knobs(self):
        tests = generate_tests(TESTS, SEED)
        assert [k.to_jsonable() for k in knobs_for(tests, SEED)] != [
            k.to_jsonable() for k in knobs_for(tests, SEED + 1)
        ]

    def test_run_case_is_reproducible(self):
        tests = generate_tests(4, SEED)
        knobs = knobs_for(tests, SEED)
        for index, test in enumerate(tests):
            first = run_case(test, FREE_ATOMICS, knobs[index], index)
            again = run_case(test, FREE_ATOMICS, knobs[index], index)
            assert first.to_jsonable() == again.to_jsonable()


class TestCleanRun:
    def test_no_violations_on_clean_simulator(self):
        tests = generate_tests(TESTS, SEED)
        report = fuzz(tests, policies=ALL_POLICIES, seed=SEED, jobs=1)
        assert report.ok, [
            (r.test_name, r.policy, [v.detail for v in r.violations])
            for r in report.violating
        ]
        # Every policy plus the default-on fence-insertion baseline.
        assert report.runs == TESTS * (len(ALL_POLICIES) + 1)
        assert report.policies[-1] == FENCED_BASELINE_NAME
        assert report.skipped_checks == 0

    def test_report_shape(self):
        tests = generate_tests(3, SEED)
        report = fuzz(
            tests, policies=(BASELINE,), seed=SEED, jobs=1,
            fenced_baseline=False,
        )
        payload = report.to_jsonable()
        assert payload["format"] == "repro-fuzz-report-v1"
        assert payload["runs"] == 3
        assert payload["policies"] == [BASELINE.name]
        assert [r["test_index"] for r in payload["records"]] == [0, 1, 2]

    def test_fenced_baseline_records_never_interesting(self):
        tests = generate_tests(6, SEED)
        report = fuzz(tests, policies=(BASELINE,), seed=SEED, jobs=1)
        baseline_records = [
            r for r in report.records if r.policy == FENCED_BASELINE_NAME
        ]
        assert len(baseline_records) == 6
        assert all(not r.interesting for r in baseline_records)
        assert all(r.ok for r in baseline_records)


class TestKnobs:
    def test_draw_respects_livelock_clamp(self):
        # 2 x network_latency >= l1_data_latency must hold for every
        # draw (see draw_knobs: permission ping-pong livelock).
        tests = generate_tests(50, SEED)
        for knobs in knobs_for(tests, SEED):
            assert 2 * knobs.network_latency >= knobs.l1_data_latency
            assert len(knobs.pads) > 0

    def test_apply_round_trips_through_config(self):
        tests = generate_tests(1, SEED)
        knobs = knobs_for(tests, SEED)[0]
        config = knobs.apply(fuzz_base_config(tests[0].num_threads))
        assert config.memory.l1d.data_latency == knobs.l1_data_latency
        assert config.memory.network_latency == knobs.network_latency
        assert config.free_atomics.aq_entries == knobs.aq_entries
        assert config.free_atomics.watchdog_cycles == knobs.watchdog_cycles

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigError):
            fuzz_base_config(2).with_overrides(no_such_knob=3)


class TestPolicyResolution:
    def test_default_is_every_registered_policy(self):
        assert resolve_policies(None) == tuple(ALL_POLICIES)

    def test_by_name(self):
        assert resolve_policies(["baseline"]) == (BASELINE,)

    def test_unknown_name_raises(self):
        with pytest.raises(Exception):
            resolve_policies(["tso-but-wrong"])
