"""Replay the shrunk fuzzer regression corpus.

Each ``corpus/*.json`` file is a minimized case the fuzzer once caught
violating its oracle under an injected consistency bug (the
store-buffer-bypassing-loads mutant of ``conftest.bypassing_loads``),
shrunk by delta debugging and persisted via
:func:`repro.consistency.shrink.write_repro`.  Replaying them is cheap
(2-op programs) and pins down three things on every run:

- the repro file format round-trips (``load_repro``/``rerun_repro``
  stay compatible with archived files, including the
  ``variant: fenced-baseline`` dispatch);
- the *healthy* simulator is clean on exactly the programs that
  historically exposed ordering bugs fastest;
- replay is deterministic — two replays produce identical records.

Re-injecting the mutant must flip every corpus case back to violating,
which proves the replays still exercise the seam they were minimized
against (a corpus that stays green under the bug would be dead weight).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.consistency.fuzz import FENCED_BASELINE_NAME
from repro.consistency.shrink import REPRO_FORMAT, load_repro, rerun_repro

CORPUS = sorted(
    (Path(__file__).parent / "corpus").glob("*.json"),
    key=lambda p: p.name,
)


def corpus_ids():
    return [path.stem for path in CORPUS]


def test_corpus_is_present():
    # Guards against the glob silently matching nothing after a move.
    assert len(CORPUS) >= 5
    assert any(
        json.loads(p.read_text()).get("variant") == "fenced-baseline"
        for p in CORPUS
    )


@pytest.mark.parametrize("path", CORPUS, ids=corpus_ids())
def test_replays_clean_on_healthy_simulator(path):
    record = rerun_repro(path)
    assert record.ok, (
        f"{path.name} regressed: "
        + "; ".join(f"{v.kind}: {v.detail}" for v in record.violations)
    )


@pytest.mark.parametrize("path", CORPUS, ids=corpus_ids())
def test_replay_is_deterministic(path):
    assert rerun_repro(path).to_jsonable() == rerun_repro(path).to_jsonable()


@pytest.mark.parametrize("path", CORPUS, ids=corpus_ids())
def test_file_format_round_trips(path):
    payload = json.loads(path.read_text())
    assert payload["format"] == REPRO_FORMAT
    test, policy, knobs = load_repro(path)
    assert test.num_ops >= 1
    if payload.get("variant") == "fenced-baseline":
        assert FENCED_BASELINE_NAME.startswith(policy.name)
    # The archived violation evidence is carried along for forensics.
    assert payload["violations"]


@pytest.mark.parametrize("path", CORPUS, ids=corpus_ids())
def test_mutant_still_reproduces(path, bypassing_loads):
    record = rerun_repro(path)
    assert record.violations, (
        f"{path.name} no longer violates under the injected bug; "
        "the corpus entry has gone stale"
    )
