"""Self-validation of the TSO oracle itself.

The fuzzer is only as good as its checker: if ``TsoChecker`` silently
accepted forbidden traces, every fuzz sweep would be green noise.  This
suite pins the oracle with hand-built traces whose verdict is known
from the x86-TSO literature — known-forbidden executions must be
rejected, known-allowed relaxed executions must be accepted — so a
regression in the model search cannot hide behind a passing fuzz run.
"""

import pytest

from repro.consistency.model import Operation, TsoChecker

X, Y, Z = 0x100, 0x140, 0x180
ld = Operation.load
st = Operation.store
rmw = Operation.rmw
fence = Operation.fence


def admissible(threads, initial=None, final=None) -> bool:
    return bool(
        TsoChecker(initial_memory=initial).admissible(threads, final_memory=final)
    )


class TestKnownForbidden:
    def test_sb_with_mfences_both_zero(self):
        # SB + mfence: the fence drains the buffer, so at least one
        # load must observe the other thread's store.
        threads = [
            [st(X, 1), fence(), ld(Y, 0)],
            [st(Y, 1), fence(), ld(X, 0)],
        ]
        assert not admissible(threads)

    def test_sb_with_rmw_barriers_both_zero(self):
        # Paper Figure 10: atomic RMWs in place of fences.
        threads = [
            [st(X, 1), rmw(Z, 0, 1), ld(Y, 0)],
            [st(Y, 1), rmw(Z, 1, 2), ld(X, 0)],
        ]
        assert not admissible(threads)

    def test_lost_rmw_update(self):
        # Two fetch_adds both claiming to read 0 is a lost update —
        # type-1 atomicity forbids it regardless of final memory.
        assert not admissible([[rmw(X, 0, 1)], [rmw(X, 0, 1)]])

    def test_rmw_final_memory_must_match(self):
        assert not admissible(
            [[rmw(X, 0, 1)], [rmw(X, 1, 2)]], final={X: 1}
        )

    def test_corr_inversion(self):
        # CoRR: two reads of one location by one thread must respect
        # coherence order — seeing 1 then 0 inverts it.
        threads = [
            [st(X, 1)],
            [ld(X, 1), ld(X, 0)],
        ]
        assert not admissible(threads)

    def test_mp_stale_data_after_flag(self):
        # TSO keeps store order: flag==1 implies data visible.
        threads = [
            [st(X, 42), st(Y, 1)],
            [ld(Y, 1), ld(X, 0)],
        ]
        assert not admissible(threads)

    def test_load_buffering_forbidden(self):
        # TSO never reorders a load with a younger store: both threads
        # observing the other's (program-later) store is impossible.
        threads = [
            [ld(X, 1), st(Y, 1)],
            [ld(Y, 1), st(X, 1)],
        ]
        assert not admissible(threads)

    def test_iriw_forbidden_without_fences(self):
        # TSO is multi-copy atomic: independent readers cannot disagree
        # on the order of two independent writes, even with no fences.
        threads = [
            [st(X, 1)],
            [st(Y, 1)],
            [ld(X, 1), ld(Y, 0)],
            [ld(Y, 1), ld(X, 0)],
        ]
        assert not admissible(threads)

    def test_own_store_cannot_be_invisible(self):
        # A load must see its own thread's latest same-address store
        # (buffer forwarding) — reading the old value is forbidden.
        assert not admissible([[st(X, 1), ld(X, 0)]])

    def test_rmw_cannot_read_buffered_value(self):
        # An RMW reads *memory* with an empty buffer; it can never pair
        # with its own unflushed store's value and leave memory stale.
        assert not admissible([[st(X, 5), rmw(X, 0, 1)]], final={X: 1})


class TestKnownAllowedRelaxations:
    def test_sb_both_zero_without_fences(self):
        threads = [
            [st(X, 1), ld(Y, 0)],
            [st(Y, 1), ld(X, 0)],
        ]
        assert admissible(threads)

    def test_own_buffer_forwarding_before_visibility(self):
        # Thread 0 reads its buffered store while thread 1 still sees 0.
        threads = [
            [st(X, 1), ld(X, 1), ld(Y, 0)],
            [st(Y, 1), ld(X, 0)],
        ]
        assert admissible(threads)

    def test_delayed_drain_after_rmw_elsewhere(self):
        # The RMW only drains its own buffer: thread 1's store may stay
        # buffered while thread 0's RMW executes.
        threads = [
            [rmw(X, 0, 1)],
            [st(X, 7), ld(X, 7)],
        ]
        assert admissible(threads, final={X: 7})

    def test_mp_with_stale_flag_read(self):
        # Reader polled before the flag landed: allowed (flag==0).
        threads = [
            [st(X, 42), st(Y, 1)],
            [ld(Y, 0), ld(X, 0)],
        ]
        assert admissible(threads)

    def test_witness_returned_for_admissible(self):
        result = TsoChecker().admissible([[st(X, 1), ld(X, 1)]])
        assert result.admissible and result.witness is not None


class TestGuardRails:
    def test_state_cap_raises_rather_than_guessing(self):
        checker = TsoChecker(max_states=5)
        threads = [
            [st(X, 1), st(Y, 1), ld(Z, 0)],
            [st(Z, 1), ld(X, 0)],
        ]
        with pytest.raises(RuntimeError):
            checker.admissible(threads)
