"""Tests for the operational x86-TSO reference model."""

import pytest

from repro.consistency.model import CheckResult, Operation, TsoChecker

A, B = 0x100, 0x140
ld = Operation.load
st = Operation.store
rmw = Operation.rmw
fence = Operation.fence


def check(threads, initial=None, final=None) -> CheckResult:
    return TsoChecker(initial_memory=initial).admissible(threads, final_memory=final)


class TestSequentialBasics:
    def test_single_thread_store_load(self):
        assert check([[st(A, 1), ld(A, 1)]])

    def test_single_thread_wrong_value_rejected(self):
        assert not check([[st(A, 1), ld(A, 2)]])

    def test_load_from_initial_memory(self):
        assert check([[ld(A, 7)]], initial={A: 7})
        assert not check([[ld(A, 8)]], initial={A: 7})

    def test_buffer_forwarding_own_store(self):
        # The load can read the store from the local buffer even though
        # another thread still sees the old value.
        threads = [[st(A, 1), ld(A, 1)], [ld(A, 0)]]
        assert check(threads)

    def test_final_memory_constraint(self):
        assert check([[st(A, 1)]], final={A: 1})
        assert not check([[st(A, 1)]], final={A: 2})


class TestStoreBuffering:
    def sb_threads(self, r0, r1):
        return [
            [st(A, 1), ld(B, r0)],
            [st(B, 1), ld(A, r1)],
        ]

    def test_relaxed_outcome_allowed(self):
        # Both loads read 0: the TSO hallmark.
        assert check(self.sb_threads(0, 0))

    def test_sc_outcomes_also_allowed(self):
        assert check(self.sb_threads(1, 0))
        assert check(self.sb_threads(0, 1))
        assert check(self.sb_threads(1, 1))

    def test_fenced_sb_forbids_0_0(self):
        threads = [
            [st(A, 1), fence(), ld(B, 0)],
            [st(B, 1), fence(), ld(A, 0)],
        ]
        assert not check(threads)

    def test_rmw_as_fence_forbids_0_0(self):
        # The paper's Figure 10: an atomic RMW between store and load
        # restores order (RMW requires an empty buffer).
        threads = [
            [st(A, 1), rmw(0x200, 0, 1), ld(B, 0)],
            [st(B, 1), rmw(0x240, 0, 1), ld(A, 0)],
        ]
        assert not check(threads)


class TestAtomicity:
    def test_concurrent_rmws_serialize(self):
        # Two fetch_adds must see distinct old values.
        assert check([[rmw(A, 0, 1)], [rmw(A, 1, 2)]], final={A: 2})
        assert check([[rmw(A, 1, 2)], [rmw(A, 0, 1)]], final={A: 2})

    def test_lost_update_rejected(self):
        # Both claim to have read 0: impossible for an atomic RMW.
        assert not check([[rmw(A, 0, 1)], [rmw(A, 0, 1)]])

    def test_rmw_does_not_read_own_buffer(self):
        # st A,5 ; rmw reading 0 would require the buffered store to be
        # skipped — but the RMW drains the buffer first, so it must
        # read 5.
        assert not check([[st(A, 5), rmw(A, 0, 1)]])
        assert check([[st(A, 5), rmw(A, 5, 6)]])


class TestMessagePassing:
    def test_stale_data_after_flag_rejected(self):
        threads = [
            [st(A, 42), st(B, 1)],  # writer: data then flag
            [ld(B, 1), ld(A, 0)],  # reader: flag set but data stale
        ]
        assert not check(threads)

    def test_fresh_data_accepted(self):
        threads = [
            [st(A, 42), st(B, 1)],
            [ld(B, 1), ld(A, 42)],
        ]
        assert check(threads)


class TestCoherence:
    def test_read_read_coherence(self):
        # Reads of one location must not go backwards.
        threads = [[st(A, 1)], [ld(A, 1), ld(A, 0)]]
        assert not check(threads)
        threads = [[st(A, 1)], [ld(A, 0), ld(A, 1)]]
        assert check(threads)


class TestWitnessAndLimits:
    def test_witness_returned(self):
        result = check([[st(A, 1), ld(A, 1)]])
        assert result.witness is not None
        assert any("store" in step for step in result.witness)

    def test_state_budget_enforced(self):
        checker = TsoChecker(max_states=5)
        big = [[st(A + i * 8, i) for i in range(8)] for _ in range(2)]
        with pytest.raises(RuntimeError, match="exceeded"):
            checker.admissible(big)

    def test_operation_validation(self):
        with pytest.raises(ValueError):
            Operation.load(A, None)  # type: ignore[arg-type]
