"""The fence-insertion transform: SC-equivalent, minimal, idempotent.

Three claims, each over the generated-program distribution plus
hand-built edge cases:

1. **Semantic equivalence** — the transformed program's TSO-reachable
   outcome set, relabelled back into the original's label space, equals
   the original program's SC-reachable set (:func:`sc_equivalent`).
2. **Idempotence** — applying the transform to its own output inserts
   zero fences; programs with no unfenced store->load pair are
   fixpoints from the start.
3. **Placement** — a fence appears only where an unfenced store->load
   window existed, at most one per store-run/load-run boundary, and
   barrier kinds (mfence, fetch_add, cas) suppress insertion.
"""

from __future__ import annotations

from repro.consistency.fence_insertion import (
    BARRIER_KINDS,
    insert_fences,
    relabel_outcome,
    sc_equivalent,
)
from repro.consistency.fuzz import knobs_for, run_fenced_case
from repro.consistency.generator import AbsOp, GeneratedTest, derive_oracle

SEED = 20260808
X, Y = 0x0, 0x40


def _test_from(threads, name="hand"):
    return derive_oracle(GeneratedTest(name=name, threads=threads))


def _generated(count):
    from repro.consistency.generator import generate_tests

    return generate_tests(count, SEED)


class TestEquivalence:
    def test_generated_programs_sc_equivalent(self):
        for test in _generated(40):
            fenced = insert_fences(test)
            assert sc_equivalent(fenced), (
                f"{test.name}: fenced TSO outcomes != original SC outcomes"
            )

    def test_store_buffering_loses_relaxed_outcome(self):
        # The canonical SB litmus: r0=0 & r1=0 is TSO-reachable but not
        # SC-reachable; after fencing it must be gone.
        test = _test_from(
            (
                (AbsOp("store", loc=X, value=1), AbsOp("load", loc=Y)),
                (AbsOp("store", loc=Y, value=1), AbsOp("load", loc=X)),
            ),
            name="sb",
        )
        relaxed = test.allowed - test.sc_allowed
        assert relaxed  # the test is meaningful
        fenced = insert_fences(test)
        assert fenced.inserted == 2
        assert sc_equivalent(fenced)
        relabelled = {
            relabel_outcome(outcome, fenced) for outcome in fenced.test.allowed
        }
        assert relabelled.isdisjoint(relaxed)

    def test_fenced_cases_pass_sc_oracle_on_simulator(self):
        tests = _generated(6)
        knobs = knobs_for(tests, SEED)
        for index, test in enumerate(tests):
            record = run_fenced_case(test, knobs[index], test_index=index)
            assert record.ok, [v.detail for v in record.violations]
            assert not record.interesting


class TestIdempotence:
    def test_double_application_inserts_nothing(self):
        for test in _generated(40):
            once = insert_fences(test)
            twice = insert_fences(once.test)
            assert twice.is_fixpoint, (
                f"{test.name}: second application inserted {twice.inserted}"
            )

    def test_already_fenced_program_is_fixpoint(self):
        test = _test_from(
            (
                (
                    AbsOp("store", loc=X, value=1),
                    AbsOp("fence"),
                    AbsOp("load", loc=Y),
                ),
                (
                    AbsOp("store", loc=Y, value=1),
                    AbsOp("fetch_add", loc=X, value=0),
                ),
            ),
            name="prefenced",
        )
        fenced = insert_fences(test)
        assert fenced.is_fixpoint
        assert fenced.test.threads == test.threads
        # Fixpoint labels map to themselves.
        assert all(new == old for new, old in fenced.label_map)

class TestPlacement:
    def test_consecutive_loads_share_one_fence(self):
        test = _test_from(
            (
                (
                    AbsOp("store", loc=X, value=1),
                    AbsOp("load", loc=Y),
                    AbsOp("load", loc=Y),
                ),
            ),
            name="two_loads",
        )
        fenced = insert_fences(test)
        assert fenced.inserted == 1
        kinds = tuple(op.kind for op in fenced.test.threads[0])
        assert kinds == ("store", "fence", "load", "load")

    def test_rmw_suppresses_insertion(self):
        for barrier in sorted(BARRIER_KINDS - {"fence"}):
            op = (
                AbsOp(barrier, loc=X, value=1, expected=0)
                if barrier == "cas"
                else AbsOp(barrier, loc=X, value=1)
            )
            test = _test_from(
                ((AbsOp("store", loc=X, value=2), op, AbsOp("load", loc=Y)),),
                name=f"barrier_{barrier}",
            )
            assert insert_fences(test).is_fixpoint

    def test_load_before_store_needs_no_fence(self):
        test = _test_from(
            ((AbsOp("load", loc=Y), AbsOp("store", loc=X, value=1)),),
            name="load_first",
        )
        assert insert_fences(test).is_fixpoint

    def test_label_map_covers_every_reading_op(self):
        for test in _generated(20):
            fenced = insert_fences(test)
            reading = sum(
                1 for ops in test.threads for op in ops if op.reads
            )
            assert len(fenced.label_map) == reading
            # Originals are exactly the original program's read labels.
            originals = {old for _, old in fenced.label_map}
            expected = {
                f"r{t}.{j}"
                for t, ops in enumerate(test.threads)
                for j, op in enumerate(ops)
                if op.reads
            }
            assert originals == expected
