"""Shared fixtures for the consistency-fuzz suite."""

import pytest

import repro.uarch.core as uarch_core
from repro.core.forwarding import LoadSource, LoadSourceDecision


@pytest.fixture
def bypassing_loads(monkeypatch):
    """Inject a consistency bug: regular loads ignore the store buffer.

    Patches the name *used by the core*
    (``repro.uarch.core.decide_load_source``), not the defining module,
    so the shim sits on exactly the seam a real regression would flow
    through.  The bypass only bites in-process — fuzz with ``jobs=1``.
    """
    original = uarch_core.decide_load_source

    def broken(load, sq, policy, max_forward_chain):
        decision = original(load, sq, policy, max_forward_chain)
        if not load.is_atomic and decision.action is not LoadSource.CACHE:
            return LoadSourceDecision(LoadSource.CACHE)
        return decision

    monkeypatch.setattr(uarch_core, "decide_load_source", broken)
