"""Shrinker unit tests with synthetic check functions (no simulator)."""

import dataclasses

import pytest

from repro.common.errors import ReproError
from repro.consistency.fuzz import PerturbationKnobs, fuzz_base_config
from repro.consistency.generator import AbsOp, GeneratedTest, derive_oracle
from repro.consistency.shrink import (
    REPRO_FORMAT,
    load_repro,
    shrink_case,
    write_repro,
)
from repro.core.policy import BASELINE


def make_test(threads, initial=()):
    return derive_oracle(
        GeneratedTest(name="synthetic", threads=threads, initial=initial)
    )


def make_knobs(test, **overrides):
    base = fuzz_base_config(test.num_threads)
    values = dict(
        pads=tuple(tuple(2 for _ in ops) for ops in test.threads),
        l1_data_latency=base.memory.l1d.data_latency,
        l2_data_latency=base.memory.l2.data_latency,
        network_latency=base.memory.network_latency,
        dram_latency=base.memory.dram_latency,
        aq_entries=base.free_atomics.aq_entries,
        watchdog_cycles=base.free_atomics.watchdog_cycles,
        max_forward_chain=base.free_atomics.max_forward_chain,
    )
    values.update(overrides)
    return PerturbationKnobs(**values)


THREE_THREADS = (
    (AbsOp("store", loc=0, value=1), AbsOp("load", loc=1)),
    (AbsOp("store", loc=1, value=1), AbsOp("load", loc=0)),
    (AbsOp("fetch_add", loc=2, value=1), AbsOp("load", loc=2)),
)


class TestShrinkCase:
    def test_non_reproducing_case_is_rejected(self):
        test = make_test(THREE_THREADS)
        with pytest.raises(ReproError):
            shrink_case(
                test, BASELINE, make_knobs(test), check=lambda *a: False
            )

    def test_reduces_to_the_failure_core(self):
        # "Bug" fires whenever thread containing the fetch_add survives.
        test = make_test(THREE_THREADS)

        def check(candidate, policy, knobs):
            return any(
                op.kind == "fetch_add"
                for ops in candidate.threads
                for op in ops
            )

        result = shrink_case(test, BASELINE, make_knobs(test), check=check)
        assert result.num_ops == 1
        assert result.test.num_threads == 1
        assert result.test.threads[0][0].kind == "fetch_add"
        # Pads track the structure and get zeroed in the knob pass.
        assert result.knobs.pads == ((0,),)

    def test_oracle_rederived_after_structural_edits(self):
        test = make_test(THREE_THREADS)
        result = shrink_case(
            test,
            BASELINE,
            make_knobs(test),
            check=lambda c, p, k: any(
                op.kind == "fetch_add" for ops in c.threads for op in ops
            ),
        )
        assert result.test.allowed  # oracle exists for the shrunk program
        assert result.test.allowed != test.allowed

    def test_knobs_walk_back_to_baseline(self):
        test = make_test(THREE_THREADS)
        noisy = make_knobs(
            test, l1_data_latency=4, dram_latency=55, aq_entries=1
        )
        result = shrink_case(
            test, BASELINE, noisy, check=lambda *a: True
        )
        clean = make_knobs(result.test)
        assert result.knobs == dataclasses.replace(
            clean, pads=result.knobs.pads
        )
        assert all(p == 0 for plan in result.knobs.pads for p in plan)

    def test_needed_knob_is_kept(self):
        test = make_test(THREE_THREADS)
        noisy = make_knobs(test, l1_data_latency=4, dram_latency=55)

        def check(candidate, policy, knobs):
            return knobs.l1_data_latency == 4  # bug needs the slow L1

        result = shrink_case(test, BASELINE, noisy, check=check)
        assert result.knobs.l1_data_latency == 4
        base = fuzz_base_config(result.test.num_threads)
        assert result.knobs.dram_latency == base.memory.dram_latency

    def test_probe_budget_is_respected(self):
        test = make_test(THREE_THREADS)
        calls = []

        def check(candidate, policy, knobs):
            calls.append(1)
            return True

        result = shrink_case(
            test, BASELINE, make_knobs(test), check=check, max_probes=3
        )
        assert result.probes <= 3
        # initial reproduce check + the capped probes
        assert len(calls) <= 4

    def test_never_shrinks_below_one_op(self):
        test = make_test(((AbsOp("store", loc=0, value=1),),))
        result = shrink_case(
            test, BASELINE, make_knobs(test), check=lambda *a: True
        )
        assert result.num_ops == 1


class TestReproFiles:
    def test_round_trip(self, tmp_path):
        test = make_test(THREE_THREADS, initial=((0, 3),))
        knobs = make_knobs(test, network_latency=5)
        path = write_repro(
            tmp_path / "case.json", test, BASELINE, knobs, seed=9
        )
        loaded_test, loaded_policy, loaded_knobs = load_repro(path)
        assert loaded_test.threads == test.threads
        assert loaded_test.initial == test.initial
        assert loaded_test.allowed == test.allowed
        assert loaded_policy is BASELINE
        assert loaded_knobs == knobs

    def test_format_marker_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ReproError, match=REPRO_FORMAT):
            load_repro(path)

    def test_write_is_deterministic(self, tmp_path):
        test = make_test(THREE_THREADS)
        knobs = make_knobs(test)
        a = write_repro(tmp_path / "a.json", test, BASELINE, knobs, seed=1)
        b = write_repro(tmp_path / "b.json", test, BASELINE, knobs, seed=1)
        assert a.read_text() == b.read_text()
