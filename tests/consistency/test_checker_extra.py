"""Extra TSO-checker scenarios: load buffering, one-sided barriers,
and cross-checks between the checker and the litmus harness."""

from repro.consistency.model import Operation, TsoChecker

A, B = 0x100, 0x140
ld = Operation.load
st = Operation.store
rmw = Operation.rmw


def check(threads, final=None):
    return TsoChecker().admissible(threads, final_memory=final)


class TestLoadBuffering:
    def test_lb_relaxed_outcome_forbidden(self):
        # LB: r0=[A]; [B]=1  ||  r1=[B]; [A]=1 — both loads reading 1
        # requires load->store reordering, which TSO forbids.
        threads = [
            [ld(A, 1), st(B, 1)],
            [ld(B, 1), st(A, 1)],
        ]
        assert not check(threads)

    def test_lb_sequential_outcomes_allowed(self):
        assert check([[ld(A, 0), st(B, 1)], [ld(B, 1), st(A, 1)]])
        assert check([[ld(A, 0), st(B, 1)], [ld(B, 0), st(A, 1)]])


class TestOneSidedBarrier:
    def test_sb_with_single_rmw_still_allows_0_0(self):
        # Only thread 0 separates its store and load with an RMW; thread
        # 1's store can still sit in its buffer past its load, so the
        # 0/0 outcome remains TSO-admissible.  (Dekker needs BOTH sides
        # fenced — paper Figure 10 uses an RMW on each thread.)
        threads = [
            [st(A, 1), rmw(0x200, 0, 1), ld(B, 0)],
            [st(B, 1), ld(A, 0)],
        ]
        assert check(threads)

    def test_sb_with_both_rmws_forbids_0_0(self):
        threads = [
            [st(A, 1), rmw(0x200, 0, 1), ld(B, 0)],
            [st(B, 1), rmw(0x240, 0, 1), ld(A, 0)],
        ]
        assert not check(threads)


class TestNAtomicsSerialization:
    def test_three_thread_rmw_chain(self):
        # Three RMWs on one address: read values must form a chain
        # 0 -> 1 -> 2 regardless of thread assignment.
        threads = [[rmw(A, 1, 2)], [rmw(A, 0, 1)], [rmw(A, 2, 3)]]
        assert check(threads, final={A: 3})

    def test_broken_chain_rejected(self):
        threads = [[rmw(A, 0, 1)], [rmw(A, 0, 2)]]
        assert not check(threads)

    def test_rmw_interleaved_with_stores(self):
        # A store may land between two RMWs (coherence order includes it).
        threads = [[rmw(A, 0, 1), rmw(A, 7, 8)], [st(A, 7)]]
        assert check(threads, final={A: 8})


class TestFinalMemorySemantics:
    def test_unmentioned_addresses_unconstrained(self):
        assert check([[st(A, 1), st(B, 2)]], final={A: 1})

    def test_buffer_must_fully_drain(self):
        # final memory reflects the drained buffers.
        assert check([[st(A, 1), st(A, 2)]], final={A: 2})
        assert not check([[st(A, 1), st(A, 2)]], final={A: 1})
