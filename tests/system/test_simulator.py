"""System-level tests: multicore runs, atomicity, result reporting."""

import pytest

from repro.common.errors import ConfigError
from repro.core.policy import ALL_POLICIES, BASELINE, FREE_ATOMICS_FWD
from repro.isa.builder import ProgramBuilder
from repro.system.simulator import System, run_workload
from repro.workloads.base import Workload
from tests.conftest import counter_workload, small_system_config

COUNTER = 0x10000


class TestAtomicity:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    def test_shared_counter_no_lost_updates(self, policy):
        workload = counter_workload(num_threads=4, iterations=50)
        result = run_workload(
            workload, policy=policy, config=small_system_config(4)
        )
        assert result.read_word(COUNTER) == 200

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    def test_two_counters_interleaved(self, policy):
        builder = ProgramBuilder()
        builder.li(1, COUNTER)
        builder.li(2, COUNTER + 0x40)
        builder.li(3, 0)
        builder.label("loop")
        builder.fetch_add(dst=4, base=1, imm=1)
        builder.fetch_add(dst=5, base=2, imm=2)
        builder.addi(3, 3, 1)
        builder.branch_lt(3, 30, "loop")
        workload = Workload("two", [builder.build()] * 3)
        result = run_workload(
            workload, policy=policy, config=small_system_config(3)
        )
        assert result.read_word(COUNTER) == 90
        assert result.read_word(COUNTER + 0x40) == 180

    def test_fetch_add_returns_unique_tickets(self):
        # Each thread stores its fetched (old) values; across threads
        # they must form a permutation of 0..N*K-1 — the strongest
        # atomicity check (no duplicated or skipped tickets).
        iters, threads = 20, 3
        builder = ProgramBuilder()
        builder.li(1, COUNTER)
        builder.li(2, 0)
        builder.muli(3, 0, 8 * iters)  # r0 = tid -> output offset
        builder.li(4, 0x20000)
        builder.add(4, 4, 3)
        builder.label("loop")
        builder.fetch_add(dst=5, base=1, imm=1)
        builder.store(src=5, base=4)
        builder.addi(4, 4, 8)
        builder.addi(2, 2, 1)
        builder.branch_lt(2, iters, "loop")
        workload = Workload("tickets", [builder.build()] * threads)
        result = run_workload(
            workload, policy=FREE_ATOMICS_FWD, config=small_system_config(threads)
        )
        tickets = [
            result.read_word(0x20000 + slot * 8) for slot in range(threads * iters)
        ]
        assert sorted(tickets) == list(range(threads * iters))


class TestReporting:
    def test_summaries_and_metrics(self):
        workload = counter_workload(2, 10)
        result = run_workload(
            workload, policy=BASELINE, config=small_system_config(2)
        )
        assert len(result.cores) == 2
        assert result.committed_instructions > 0
        assert result.committed_atomics == 20
        assert 0 < result.apki < 1000
        assert result.slowest_core.finish_cycle == max(
            core.finish_cycle for core in result.cores
        )
        assert result.cycles >= result.slowest_core.finish_cycle

    def test_deterministic_across_runs(self):
        workload = counter_workload(3, 25)
        config = small_system_config(3)
        first = run_workload(workload, policy=FREE_ATOMICS_FWD, config=config)
        second = run_workload(workload, policy=FREE_ATOMICS_FWD, config=config)
        assert first.cycles == second.cycles
        assert first.stats.counters() == second.stats.counters()

    def test_too_many_threads_rejected(self):
        workload = counter_workload(4, 1)
        with pytest.raises(ConfigError, match="threads"):
            System(workload, config=small_system_config(2))

    def test_initial_regs_thread_id(self):
        builder = ProgramBuilder()
        builder.li(1, 0x30000)
        builder.muli(2, 0, 8)
        builder.add(1, 1, 2)
        builder.store(src=0, base=1)
        workload = Workload("tid", [builder.build()] * 3)
        result = run_workload(workload, config=small_system_config(3))
        assert [result.read_word(0x30000 + 8 * t) for t in range(3)] == [0, 1, 2]

    def test_initial_memory_visible(self):
        builder = ProgramBuilder()
        builder.li(1, 0x40000)
        builder.load(2, base=1)
        builder.li(3, 0x40040)
        builder.store(src=2, base=3)
        workload = Workload(
            "init", [builder.build()], initial_memory={0x40000: 1234}
        )
        result = run_workload(workload, config=small_system_config(1))
        assert result.read_word(0x40040) == 1234


class TestQuiescentAccounting:
    def test_spin_marked_instructions_count_quiescent(self):
        builder = ProgramBuilder()
        builder.li(1, 0)
        with builder.spin_region():
            builder.label("spin")
            builder.pause()
            builder.addi(1, 1, 1)
            builder.branch_lt(1, 30, "spin")
        workload = Workload("spin", [builder.build()])
        result = run_workload(workload, config=small_system_config(1))
        summary = result.cores[0]
        assert summary.quiescent_cycles > summary.active_cycles

    def test_finished_core_idles_quiescent(self):
        fast = ProgramBuilder()
        fast.nop()
        slow = ProgramBuilder()
        slow.li(1, 0)
        slow.label("loop")
        slow.addi(1, 1, 1)
        slow.branch_lt(1, 200, "loop")
        workload = Workload("skew", [fast.build(), slow.build()])
        result = run_workload(workload, config=small_system_config(2))
        fast_core = result.cores[0]
        assert fast_core.quiescent_cycles > 0


class TestRunLifecycle:
    def test_run_is_single_use(self):
        # A finished System silently "re-ran" to a zero-cycle result
        # with stale state before; now it refuses.
        from repro.common.errors import SimulationError

        system = System(counter_workload(2, 3), config=small_system_config(2))
        assert system.run().cycles > 0
        with pytest.raises(SimulationError, match="single-use"):
            system.run()

    def test_watchdog_stats_independent_of_run_order(self):
        from repro.core.policy import FREE_ATOMICS
        from tests.integration.test_deadlocks import rmw_rmw_workload

        workload, _ = rmw_rmw_workload(iterations=10)
        config = small_system_config(2, watchdog_cycles=400)
        lone = run_workload(workload, policy=FREE_ATOMICS, config=config)
        # Interleave an unrelated quiet run; per-run watchdog totals
        # must not depend on what ran before.
        run_workload(counter_workload(2, 5), config=small_system_config(2))
        again = run_workload(workload, policy=FREE_ATOMICS, config=config)
        assert lone.timeouts == again.timeouts > 0
        assert lone.summary().canonical_json() == again.summary().canonical_json()
