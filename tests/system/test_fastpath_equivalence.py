"""A/B equivalence of the hierarchy hot-path shortcuts.

The zero-event L1-hit completion and the no-op fill elision
(``mem/hierarchy.py``) are pure optimizations: with ``REPRO_NO_FASTPATH=1``
every shortcut is disabled and all completions go through posted events.
These tests run randomized workloads both ways and require the
``ResultSummary`` canonical JSON to be byte-identical — any divergence in
event ordering, stats, or timing fails loudly.

The sync fast path only arms when the configured L1 hit latency is zero,
so the config here uses ``tag_latency=0, data_latency=0`` for the L1D
(the default presets keep hit latency 4 and exercise only the no-op
elision).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.common.config import CacheConfig, icelake_config
from repro.consistency.litmus import LITMUS_TESTS
from repro.core.policy import ALL_POLICIES, FREE_ATOMICS_FWD
from repro.system.simulator import run_workload
from repro.system.trace import operations_to_jsonable
from repro.workloads.generator import WorkloadScale, generate_workload
from tests.conftest import counter_workload, small_system_config


def zero_hit_config(num_cores: int):
    """Small system whose L1D hits complete in zero cycles."""
    config = small_system_config(num_cores)
    memory = dataclasses.replace(
        config.memory,
        l1d=CacheConfig("L1D", 4 * 4 * 64, 4, 0, 0),
    )
    return config.replace(memory=memory)


def canonical(workload, policy, config, monkeypatch, fastpath: bool) -> str:
    if fastpath:
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    else:
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    result = run_workload(workload, policy=policy, config=config)
    return result.summary().canonical_json()


@pytest.mark.parametrize("seed", [1, 7, 99])
@pytest.mark.parametrize("bench_name", ["AS", "canneal"])
def test_randomized_workloads_identical_with_zero_latency_l1(
    bench_name, seed, monkeypatch
):
    scale = WorkloadScale(num_threads=2, instructions_per_thread=300, seed=seed)
    workload = generate_workload(bench_name, scale)
    config = zero_hit_config(2)
    with_fast = canonical(
        workload, FREE_ATOMICS_FWD, config, monkeypatch, fastpath=True
    )
    without = canonical(
        workload, FREE_ATOMICS_FWD, config, monkeypatch, fastpath=False
    )
    assert with_fast == without


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
def test_contended_counter_identical_across_policies(policy, monkeypatch):
    config = zero_hit_config(3)
    results = [
        canonical(
            counter_workload(3, 20), policy, config, monkeypatch, fastpath=fast
        )
        for fast in (True, False)
    ]
    assert results[0] == results[1]


def test_default_preset_identical(monkeypatch):
    """hit_latency=4 presets only elide no-op fills; still byte-identical."""
    scale = WorkloadScale(num_threads=2, instructions_per_thread=300, seed=5)
    workload = generate_workload("watersp", scale)
    config = small_system_config(2)
    with_fast = canonical(
        workload, FREE_ATOMICS_FWD, config, monkeypatch, fastpath=True
    )
    without = canonical(
        workload, FREE_ATOMICS_FWD, config, monkeypatch, fastpath=False
    )
    assert with_fast == without


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
@pytest.mark.parametrize("seed", [3, 11])
def test_randomized_workloads_identical_all_policies(policy, seed, monkeypatch):
    """LSQ-index + quiescing fast paths, A/B across every atomic policy.

    The older randomized test pinned free+fwd; the indexed-core fast
    paths (per-line SQ/LQ maps, ordering watermarks, retry queues, the
    drained System loop) take policy-dependent branches — fenced
    atomics, speculative loads, atomic forwarding — so each policy gets
    its own byte-identity check.
    """
    scale = WorkloadScale(num_threads=2, instructions_per_thread=250, seed=seed)
    workload = generate_workload("AS", scale)
    config = zero_hit_config(2)
    with_fast = canonical(workload, policy, config, monkeypatch, fastpath=True)
    without = canonical(workload, policy, config, monkeypatch, fastpath=False)
    assert with_fast == without


def _litmus_run(test, policy, pads, monkeypatch, fastpath: bool):
    if fastpath:
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    else:
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    config = icelake_config(num_cores=test.num_threads)
    result = run_workload(
        test.build(pads), policy=policy, config=config, trace=True
    )
    observations = {
        label: result.read_word(addr)
        for label, addr in test.observations.items()
    }
    return (
        observations,
        operations_to_jsonable(result.traces),
        result.summary().canonical_json(),
    )


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
@pytest.mark.parametrize("name", sorted(LITMUS_TESTS))
def test_litmus_suite_identical_traces(name, policy, monkeypatch):
    """Full litmus suite both ways: identical committed traces.

    Stronger than summary identity alone — the per-core committed
    memory-operation traces pin the exact interleaving the consistency
    checker sees, so a fast path that reordered commits while keeping
    aggregate stats intact would still fail here.
    """
    test = LITMUS_TESTS[name]
    pads = [0, 3] + [0] * max(0, test.num_threads - 2)
    obs_fast, traces_fast, json_fast = _litmus_run(
        test, policy, pads, monkeypatch, fastpath=True
    )
    obs_slow, traces_slow, json_slow = _litmus_run(
        test, policy, pads, monkeypatch, fastpath=False
    )
    assert obs_fast == obs_slow
    assert traces_fast == traces_slow
    assert json_fast == json_slow
    assert not test.forbidden(obs_fast)


def _obs_run(workload, policy, config, monkeypatch, fastpath: bool):
    """One observability-attached run: event stream + counts + summary."""
    if fastpath:
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    else:
        monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
    from repro.obs.attach import Observability

    obs = Observability()
    result = run_workload(
        workload, policy=policy, config=config, observability=obs
    )
    events = [
        (e.cycle, e.cat, e.kind, e.src, e.seq, e.dur, e.info)
        for e in obs.bus.ring
    ]
    return events, dict(obs.bus.counts), result.summary().canonical_json()


@pytest.mark.parametrize("bench_name", ["AS", "watersp"])
def test_obs_attached_event_streams_identical(bench_name, monkeypatch):
    """Obs-attached A/B: the batched engine must fall back to (or alias-
    refresh into) the hook paths so wrapped stages see every invocation —
    the full structured event stream, the exact per-stream counts, and
    the summary (including ``meta['health']``) must match byte for byte.
    """
    scale = WorkloadScale(num_threads=2, instructions_per_thread=300, seed=9)
    workload = generate_workload(bench_name, scale)
    config = zero_hit_config(2)
    fast = _obs_run(workload, FREE_ATOMICS_FWD, config, monkeypatch, True)
    slow = _obs_run(workload, FREE_ATOMICS_FWD, config, monkeypatch, False)
    assert fast[0] == slow[0], "structured event streams diverge"
    assert fast[1] == slow[1], "per-stream event counts diverge"
    assert fast[2] == slow[2], "summaries (incl. health) diverge"
    assert "health" in json.loads(fast[2])["meta"]


@pytest.mark.parametrize("bench_name,seed", [("AS", 13), ("watersp", 21)])
def test_randomized_8_thread_workloads_identical(bench_name, seed, monkeypatch):
    """A/B at 8 threads: more cores than any other equivalence point,
    so cross-core interleavings (directory traffic, lock convoys, the
    quiescing of idle cores) cover orderings the 2-thread points cannot
    reach.
    """
    scale = WorkloadScale(num_threads=8, instructions_per_thread=200, seed=seed)
    workload = generate_workload(bench_name, scale)
    config = zero_hit_config(8)
    with_fast = canonical(
        workload, FREE_ATOMICS_FWD, config, monkeypatch, fastpath=True
    )
    without = canonical(
        workload, FREE_ATOMICS_FWD, config, monkeypatch, fastpath=False
    )
    assert with_fast == without


def test_sync_fastpath_actually_fires(monkeypatch):
    """Guard against the fast path silently never arming (dead test risk)."""
    monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
    from repro.system.simulator import System

    system = System(
        counter_workload(2, 15), policy=FREE_ATOMICS_FWD, config=zero_hit_config(2)
    )
    assert all(core.hierarchy._fastpath for core in system.cores)
    system.run()
    # Zero-latency hits must have completed synchronously at least once.
    assert system.stats.aggregate("l1_hits") > 0
