"""Tests for the pipeline tracer."""

from repro.core.policy import FREE_ATOMICS_FWD
from repro.isa.builder import ProgramBuilder
from repro.system.simulator import System
from repro.system.trace import PipelineTracer
from repro.workloads.base import Workload
from tests.conftest import small_system_config


def traced_run(builder: ProgramBuilder, policy=FREE_ATOMICS_FWD):
    workload = Workload("traced", [builder.build()])
    system = System(workload, policy=policy, config=small_system_config(1))
    tracer = PipelineTracer()
    tracer.attach(system.cores[0])
    result = system.run()
    return tracer, result


class TestEventRecording:
    def test_basic_lifecycle(self):
        builder = ProgramBuilder()
        builder.li(1, 0x1000)
        builder.store(imm=7, base=1)
        builder.load(2, base=1)
        tracer, _ = traced_run(builder)
        kinds = {event.kind for event in tracer.events}
        assert {"dispatch", "commit", "store_perform", "perform"} <= kinds

    def test_atomic_lock_unlock_events(self):
        builder = ProgramBuilder()
        builder.li(1, 0x1000)
        builder.fetch_add(dst=2, base=1, imm=1)
        tracer, result = traced_run(builder)
        assert result.read_word(0x1000) == 1
        locks = tracer.of_kind("lock")
        assert len(locks) == 1
        writes = [e for e in tracer.of_kind("store_perform") if "unlock" in e.detail]
        assert len(writes) == 1
        assert locks[0].cycle <= writes[0].cycle

    def test_squash_events_on_mispredict(self):
        builder = ProgramBuilder()
        builder.li(1, 0)
        builder.label("loop")
        builder.addi(1, 1, 1)
        builder.branch_lt(1, 12, "loop")
        tracer, _ = traced_run(builder)
        assert tracer.of_kind("squash")

    def test_commit_order_is_program_order(self):
        builder = ProgramBuilder()
        builder.li(1, 0x1000)
        for k in range(5):
            builder.store(imm=k, base=1, offset=k * 8)
        tracer, _ = traced_run(builder)
        commit_seqs = [event.seq for event in tracer.of_kind("commit")]
        assert commit_seqs == sorted(commit_seqs)

    def test_events_have_nondecreasing_cycles(self):
        builder = ProgramBuilder()
        builder.li(1, 0x1000)
        builder.fetch_add(dst=2, base=1, imm=1)
        builder.load(3, base=1)
        tracer, _ = traced_run(builder)
        cycles = [event.cycle for event in tracer.events]
        assert cycles == sorted(cycles)


class TestTimeline:
    def test_render_contains_stage_markers(self):
        builder = ProgramBuilder()
        builder.li(1, 0x1000)
        builder.fetch_add(dst=2, base=1, imm=1)
        tracer, _ = traced_run(builder)
        text = tracer.timeline(0)
        assert "D@" in text and "C@" in text and "P@" in text
        assert "atomic" in text

    def test_squashed_instructions_marked(self):
        builder = ProgramBuilder()
        builder.li(1, 0)
        builder.label("loop")
        builder.addi(1, 1, 1)
        builder.branch_lt(1, 8, "loop")
        tracer, _ = traced_run(builder)
        assert "X@" in tracer.timeline(0)

    def test_str_of_event(self):
        builder = ProgramBuilder()
        builder.nop()
        tracer, _ = traced_run(builder)
        assert "core0" in str(tracer.events[0])


class TestBoundedRing:
    """The tracer's event store is a capped ring, not an unbounded list."""

    def long_run(self, capacity):
        builder = ProgramBuilder()
        builder.li(1, 0x1000)
        builder.li(2, 0)
        builder.label("loop")
        builder.store(imm=1, base=1)
        builder.addi(2, 2, 1)
        builder.branch_lt(2, 40, "loop")
        workload = Workload("traced", [builder.build()])
        system = System(workload, config=small_system_config(1))
        tracer = PipelineTracer(capacity=capacity)
        tracer.attach(system.cores[0])
        system.run()
        return tracer

    def test_capacity_enforced_and_drops_counted(self):
        tracer = self.long_run(capacity=16)
        assert tracer.capacity == 16
        assert len(tracer) == 16
        assert tracer.dropped > 0

    def test_retained_window_is_newest_and_chronological(self):
        big = self.long_run(capacity=10_000)
        small = self.long_run(capacity=16)
        assert small.dropped == len(big.events) - 16
        tail = [
            (e.cycle, e.kind, e.seq) for e in big.events.snapshot()[-16:]
        ]
        kept = [(e.cycle, e.kind, e.seq) for e in small.events]
        assert kept == tail

    def test_timeline_renders_after_eviction(self):
        tracer = self.long_run(capacity=16)
        text = tracer.timeline(0)
        assert text  # only the retained window, but it still renders
        rendered_seqs = {e.seq for e in tracer.events if e.kind != "squash"}
        for line in text.splitlines():
            assert int(line.split()[1]) in rendered_seqs

    def test_default_capacity_untouched_runs_report_zero_dropped(self):
        tracer = self.long_run(capacity=100_000)
        assert tracer.dropped == 0
