"""A/B equivalence of the spin fast-forward engine (repro.uarch.spinff).

Paper-scale runs (32 threads, barrier-heavy kernels) spend most of
their simulated time in spin-wait loops; the fast-forward engine parks
spinning cores and warps over the dead time.  These tests pin the
contract that makes that legal: the observable result — the canonical
``ResultSummary`` JSON — is byte-identical with the engine on, with
only it off (``REPRO_NO_SPINFF=1``), and with every fast path off
(``REPRO_NO_FASTPATH=1``), at the full 32-thread machine width, with
observability attached and detached.

The ``fastforward`` diagnostics (parks / spin_cycles_skipped /
time_warp_jumps) are deliberately *outside* the summary: they describe
how the run was simulated, not what it computed.  The guard tests here
assert they are non-zero on the fast leg, so the identity tests cannot
silently degrade into comparing two runs that both never parked.
"""

from __future__ import annotations

import pytest

from repro.common.config import icelake_config
from repro.core.policy import FREE_ATOMICS_FWD
from repro.system.simulator import run_workload
from repro.workloads.generator import WorkloadScale, generate_workload

PAPER_WIDTH = 32

#: env knob per leg: all fast paths on / only spinff off / everything off.
LEGS = {
    "fast": (),
    "nospinff": ("REPRO_NO_SPINFF",),
    "nofastpath": ("REPRO_NO_FASTPATH",),
}


def _run(workload, config, monkeypatch, leg: str, observability=None):
    for var in ("REPRO_NO_FASTPATH", "REPRO_NO_SPINFF"):
        monkeypatch.delenv(var, raising=False)
    for var in LEGS[leg]:
        monkeypatch.setenv(var, "1")
    return run_workload(
        workload,
        policy=FREE_ATOMICS_FWD,
        config=config,
        observability=observability,
    )


def paper_width_workload(bench_name: str, instructions: int, seed: int = 0):
    scale = WorkloadScale(
        num_threads=PAPER_WIDTH,
        instructions_per_thread=instructions,
        seed=seed,
    )
    return generate_workload(bench_name, scale)


def test_paper_width_canneal_identical_across_legs(monkeypatch):
    """32-thread canneal: summary byte-identity across all three legs,
    with the fast leg proven to actually park (non-zero diagnostics)."""
    workload = paper_width_workload("canneal", 150)
    config = icelake_config(num_cores=PAPER_WIDTH)
    fast = _run(workload, config, monkeypatch, "fast")
    assert fast.fastforward["parks"] > 0, "fast leg never parked: dead test"
    assert fast.fastforward["spin_cycles_skipped"] > 0
    nospinff = _run(workload, config, monkeypatch, "nospinff")
    assert nospinff.fastforward["parks"] == 0
    reference = _run(workload, config, monkeypatch, "nofastpath")
    assert reference.fastforward["parks"] == 0
    fast_json = fast.summary().canonical_json()
    assert fast_json == nospinff.summary().canonical_json()
    assert fast_json == reference.summary().canonical_json()


@pytest.mark.parametrize("bench_name", ["AS", "watersp"])
def test_barrier_kernels_identical(bench_name, monkeypatch):
    """The barrier-period kernels — the workloads whose spin time made
    the paper scale intractable before the engine.  16 threads, not 32:
    the reference leg's spin time grows roughly quadratically with
    thread count (~100 host-seconds per kernel at 32), and the 32-wide
    legs are already covered by the canneal tests above; 16 threads
    still parks these kernels dozens of times per run."""
    workload = generate_workload(
        bench_name,
        WorkloadScale(num_threads=16, instructions_per_thread=50, seed=0),
    )
    config = icelake_config(num_cores=16)
    fast = _run(workload, config, monkeypatch, "fast")
    assert fast.fastforward["parks"] > 0
    reference = _run(workload, config, monkeypatch, "nofastpath")
    assert (
        fast.summary().canonical_json()
        == reference.summary().canonical_json()
    )


def test_paper_width_obs_attached_identical(monkeypatch):
    """Obs-attached A/B at 32 threads: parking must not eat events.

    With observability attached the engine still parks (the per-lap
    event tape is re-synthesized on wake), so the full structured event
    stream, the per-stream counts, and the summary must all match the
    reference leg exactly.
    """
    from repro.obs.attach import Observability

    workload = paper_width_workload("canneal", 100)
    config = icelake_config(num_cores=PAPER_WIDTH)
    streams = {}
    for leg in ("fast", "nofastpath"):
        obs = Observability()
        result = _run(workload, config, monkeypatch, leg, observability=obs)
        streams[leg] = (
            [
                (e.cycle, e.cat, e.kind, e.src, e.seq, e.dur, e.info)
                for e in obs.bus.ring
            ],
            dict(obs.bus.counts),
            result.summary().canonical_json(),
        )
    fast, reference = streams["fast"], streams["nofastpath"]
    assert fast[0] == reference[0], "structured event streams diverge"
    assert fast[1] == reference[1], "per-stream event counts diverge"
    assert fast[2] == reference[2], "summaries diverge"


def test_time_warp_fires_at_paper_width(monkeypatch):
    """The global time-warp must engage once spinning cores park —
    otherwise parked cores still cost one empty-bucket scan per cycle
    and the paper-scale speedup quietly evaporates."""
    workload = paper_width_workload("canneal", 150)
    config = icelake_config(num_cores=PAPER_WIDTH)
    fast = _run(workload, config, monkeypatch, "fast")
    assert fast.fastforward["time_warp_jumps"] > 0
