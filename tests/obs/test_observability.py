"""System-level observability tests.

The load-bearing properties:

- attaching an observer never changes simulation outcomes (cycles,
  stats, and the canonical summary modulo ``meta["health"]``);
- the instrumentation fires identically with the hierarchy fast paths
  disabled (``REPRO_NO_FASTPATH=1``) — identical event streams and
  byte-identical summaries on squash-heavy contended runs;
- online invariant audits run clean on healthy systems and never keep
  the event queue alive (deadlock detection stays intact);
- the ring bound caps memory while the per-stream counters stay exact.
"""

import json

import pytest

from repro.common.errors import DeadlockError, SimulationError
from repro.core.policy import FREE_ATOMICS, FREE_ATOMICS_FWD
from repro.obs import ObsConfig, Observability
from repro.obs.config import ConfigError
from repro.obs.health import HEALTH_SCHEMA, pow2_histogram
from repro.system.simulator import System, run_workload
from tests.conftest import counter_workload, small_system_config
from tests.integration.test_deadlocks import rmw_rmw_workload


def contended_config(threads=3, watchdog_cycles=80):
    """Small system under heavy lock contention: watchdog squashes arise."""
    return small_system_config(threads, watchdog_cycles=watchdog_cycles)


def observed_run(workload, config, obs_config=None, policy=FREE_ATOMICS_FWD):
    obs = Observability(obs_config or ObsConfig())
    result = run_workload(
        workload, policy=policy, config=config, observability=obs
    )
    return obs, result


class TestNonPerturbation:
    def test_summary_identical_modulo_health(self):
        workload = counter_workload(3, 20)
        config = contended_config()
        plain = run_workload(workload, policy=FREE_ATOMICS_FWD, config=config)
        obs, observed = observed_run(workload, config)
        assert observed.cycles == plain.cycles
        assert observed.stats.counters() == plain.stats.counters()
        assert observed.cores == plain.cores
        with_health = observed.summary().to_json_dict()
        health = with_health["meta"].pop("health")
        assert health["schema"] == HEALTH_SCHEMA
        assert json.dumps(with_health, sort_keys=True) == json.dumps(
            plain.summary().to_json_dict(), sort_keys=True
        )

    def test_unobserved_summary_carries_no_health(self):
        result = run_workload(
            counter_workload(2, 5), config=small_system_config(2)
        )
        assert result.health is None
        assert "health" not in result.summary().meta

    def test_explicit_meta_health_not_clobbered(self):
        workload = counter_workload(2, 5)
        obs, result = observed_run(workload, small_system_config(2))
        summary = result.summary(meta={"health": "mine"})
        assert summary.meta["health"] == "mine"


class TestFastpathEquivalence:
    def canonical_and_keys(self, monkeypatch, fastpath, workload, config, policy):
        if fastpath:
            monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
        else:
            monkeypatch.setenv("REPRO_NO_FASTPATH", "1")
        obs, result = observed_run(workload, config, policy=policy)
        return result.summary().canonical_json(), obs.event_keys(), obs

    def test_contended_counter_identical(self, monkeypatch):
        runs = [
            self.canonical_and_keys(
                monkeypatch,
                fast,
                counter_workload(3, 20),
                contended_config(),
                FREE_ATOMICS_FWD,
            )
            for fast in (True, False)
        ]
        assert runs[0][2].health["squashes"]["total"] > 0
        assert runs[0][1] == runs[1][1]
        assert runs[0][0] == runs[1][0]

    def test_watchdog_squash_heavy_run_identical(self, monkeypatch):
        # The RMW-RMW cross-lock pattern forces watchdog fires, so the
        # A/B equivalence covers the watchdog arm/fire/squash stream and
        # the squash-cause attribution, not just the happy path.
        workload, _ = rmw_rmw_workload(iterations=10)
        config = small_system_config(2, watchdog_cycles=400)
        runs = [
            self.canonical_and_keys(
                monkeypatch, fast, workload, config, FREE_ATOMICS
            )
            for fast in (True, False)
        ]
        health = runs[0][2].health
        assert health["watchdog"]["timeouts"] > 0
        assert health["squashes"]["causes"]["watchdog"] > 0
        assert runs[0][1] == runs[1][1]
        assert runs[0][0] == runs[1][0]

    def test_event_stream_covers_all_categories(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_FASTPATH", raising=False)
        obs, _ = observed_run(counter_workload(3, 20), contended_config())
        cats = {event.cat for event in obs.bus}
        assert {"pipeline", "aq", "watchdog", "forward", "coherence"} <= cats


class TestOnlineAudits:
    def test_audits_run_clean_on_healthy_system(self):
        obs, result = observed_run(
            counter_workload(3, 20),
            contended_config(),
            ObsConfig(audit_interval_cycles=25),
        )
        assert obs.audits_run > 0
        assert obs.violations == []
        assert obs.final_violations == []
        audits = result.health["audits"]
        assert audits["runs"] == obs.audits_run
        assert audits["violations"] == []

    def test_audits_do_not_perturb_outcome(self):
        workload = counter_workload(3, 20)
        config = contended_config()
        plain = run_workload(workload, policy=FREE_ATOMICS_FWD, config=config)
        obs, audited = observed_run(
            workload, config, ObsConfig(audit_interval_cycles=25)
        )
        assert audited.cycles == plain.cycles
        assert audited.stats.counters() == plain.stats.counters()

    def test_deadlock_detection_survives_audit_rearm(self):
        # A hard RMW-RMW deadlock with the watchdog disabled must still
        # be diagnosed as "queue empty with unfinished threads": the
        # periodic audit event must not keep the queue alive forever.
        workload, _ = rmw_rmw_workload(iterations=50)
        config = small_system_config(2, watchdog_enabled=False)
        obs = Observability(ObsConfig(audit_interval_cycles=50))
        with pytest.raises(DeadlockError, match="unfinished"):
            run_workload(
                workload, policy=FREE_ATOMICS, config=config, observability=obs
            )
        assert obs.audits_run > 0  # it really was auditing along the way

    def test_audit_disabled_by_default(self):
        obs, _ = observed_run(counter_workload(2, 5), small_system_config(2))
        assert obs.audits_run == 0


class TestHealthReport:
    def test_contents(self):
        obs, result = observed_run(counter_workload(3, 20), contended_config())
        health = result.health
        assert health["schema"] == HEALTH_SCHEMA
        events = health["events"]
        assert events["retained"] + 0 <= sum(events["counts"].values())
        assert events["retained"] == len(obs.bus)
        assert events["dropped"] == obs.bus.dropped
        watchdog = health["watchdog"]
        assert watchdog["timeouts"] == result.timeouts
        assert watchdog["fires_observed"] == watchdog["timeouts"]
        assert sum(watchdog["per_core"]) == watchdog["timeouts"]
        causes = health["squashes"]["causes"]
        assert set(causes) == {"branch", "mem_dep", "mem_order", "watchdog"}
        assert health["squashes"]["total"] == result.squashes
        holds = health["lock_hold_cycles"]
        assert holds["count"] == len(obs.lock_holds) > 0
        assert holds["min"] <= holds["mean"] <= holds["max"]
        assert health["forward_chain_depth"]["count"] == len(obs.chain_depths)

    def test_health_is_json_stable(self):
        runs = [
            observed_run(counter_workload(3, 20), contended_config())[1]
            for _ in range(2)
        ]
        assert json.dumps(runs[0].health, sort_keys=True) == json.dumps(
            runs[1].health, sort_keys=True
        )

    def test_pow2_histogram_buckets(self):
        assert pow2_histogram([]) == []
        assert pow2_histogram([0, 1, 1]) == [[1, 3]]
        assert pow2_histogram([2, 3, 4, 5]) == [[2, 1], [4, 2], [8, 1]]


class TestBoundsAndLifecycle:
    def test_ring_bound_respected_counts_exact(self):
        obs, _ = observed_run(
            counter_workload(3, 20),
            contended_config(),
            ObsConfig(capacity=64),
        )
        assert len(obs.bus) == 64
        assert obs.bus.dropped > 0
        assert obs.bus.total() == 64 + obs.bus.dropped
        assert obs.bus.total() == sum(obs.bus.counts.values())

    def test_observability_is_single_use(self):
        obs = Observability()
        workload = counter_workload(2, 2)
        System(workload, config=small_system_config(2), observability=obs)
        with pytest.raises(SimulationError, match="single-use"):
            System(workload, config=small_system_config(2), observability=obs)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ObsConfig(capacity=0)
        with pytest.raises(ConfigError):
            ObsConfig(audit_interval_cycles=-1)
        with pytest.raises(ConfigError):
            ObsConfig(audit_max_violations=0)

    def test_category_gating(self):
        obs, _ = observed_run(
            counter_workload(2, 10),
            small_system_config(2),
            ObsConfig(pipeline=False, forwarding=False),
        )
        cats = {event.cat for event in obs.bus}
        assert "pipeline" not in cats and "forward" not in cats
        assert "aq" in cats

    def test_live_sink_fanout(self):
        seen = []
        obs = Observability()
        obs.bus.sinks.append(lambda event: seen.append(event.cat))
        run_workload(
            counter_workload(2, 3),
            config=small_system_config(2),
            observability=obs,
        )
        assert len(seen) == obs.bus.total()
