"""Chrome trace_event export + schema validation."""

import json

from repro.obs.bus import EventBus
from repro.obs.chrome import (
    CORES_PID,
    DIRECTORY_PID,
    chrome_trace,
    validate_trace,
    write_chrome_trace,
)


def small_bus() -> EventBus:
    bus = EventBus(capacity=64)
    bus.emit(10, "pipeline", "dispatch", 0, 1, info={"pc": 0})
    bus.emit(12, "aq", "lock", 0, 1, info={"line": 0x40})
    bus.emit(20, "aq", "unlock", 0, 1, dur=8, info={"line": 0x40})
    bus.emit(25, "coherence", "txn", -1, dur=15, info={"kind": "GetX", "line": 0x40, "requester": 1})
    bus.emit(30, "watchdog", "fire", 1, 7, info={"line": 0x40})
    return bus


class TestExport:
    def test_payload_validates_clean(self):
        payload = chrome_trace(small_bus(), num_cores=2)
        assert validate_trace(payload) == []

    def test_metadata_records_lead(self):
        payload = chrome_trace(small_bus(), num_cores=2)
        events = payload["traceEvents"]
        # process + 2 core threads + directory process/thread
        metas = [e for e in events if e["ph"] == "M"]
        assert events[: len(metas)] == metas
        names = {(e["name"], e["pid"], e["tid"]) for e in metas}
        assert ("process_name", CORES_PID, 0) in names
        assert ("thread_name", CORES_PID, 1) in names
        assert ("thread_name", DIRECTORY_PID, 0) in names

    def test_span_streams_become_X_with_start_ts(self):
        payload = chrome_trace(small_bus(), num_cores=2)
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in spans}
        unlock = by_name["aq:unlock"]
        assert unlock["ts"] == 20 - 8 and unlock["dur"] == 8
        assert unlock["pid"] == CORES_PID and unlock["tid"] == 0
        txn = by_name["coherence:txn"]
        assert txn["ts"] == 25 - 15 and txn["dur"] == 15
        assert txn["pid"] == DIRECTORY_PID  # src=-1 -> directory lane

    def test_instants_carry_scope_and_seq(self):
        payload = chrome_trace(small_bus(), num_cores=2)
        instants = {e["name"]: e for e in payload["traceEvents"] if e["ph"] == "i"}
        fire = instants["watchdog:fire"]
        assert fire["s"] == "t" and fire["ts"] == 30
        assert fire["args"]["seq"] == 7 and fire["args"]["line"] == 0x40

    def test_other_data_counts_and_health(self):
        bus = small_bus()
        payload = chrome_trace(bus, num_cores=2, health={"schema": 1})
        other = payload["otherData"]
        assert other["dropped_events"] == 0
        assert other["event_counts"]["aq/unlock"] == 1
        assert other["health"] == {"schema": 1}

    def test_write_round_trips(self, tmp_path):
        payload = chrome_trace(small_bus(), num_cores=2)
        path = write_chrome_trace(tmp_path / "deep" / "trace.json", payload)
        assert path.exists()
        assert json.loads(path.read_text()) == payload


class TestValidator:
    def test_rejects_non_object_payload(self):
        assert validate_trace([1, 2]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_trace({"displayTimeUnit": "ms"}) == [
            "payload.traceEvents must be a list"
        ]

    def test_rejects_unknown_phase(self):
        errors = validate_trace({"traceEvents": [{"ph": "Z"}]})
        assert any("unknown phase" in e for e in errors)

    def test_rejects_span_without_dur(self):
        event = {"ph": "X", "name": "a", "cat": "c", "pid": 1, "tid": 0, "ts": 3}
        errors = validate_trace({"traceEvents": [event]})
        assert any("needs non-negative dur" in e for e in errors)

    def test_rejects_negative_ts(self):
        event = {
            "ph": "i", "name": "a", "cat": "c", "pid": 1, "tid": 0,
            "ts": -1, "s": "t",
        }
        errors = validate_trace({"traceEvents": [event]})
        assert any("non-negative" in e for e in errors)

    def test_rejects_bad_instant_scope(self):
        event = {
            "ph": "i", "name": "a", "cat": "c", "pid": 1, "tid": 0,
            "ts": 1, "s": "q",
        }
        errors = validate_trace({"traceEvents": [event]})
        assert any("scope" in e for e in errors)

    def test_rejects_unknown_metadata_record(self):
        event = {"ph": "M", "name": "bogus", "pid": 1, "tid": 0, "args": {}}
        errors = validate_trace({"traceEvents": [event]})
        assert any("metadata" in e for e in errors)

    def test_rejects_bad_display_unit(self):
        errors = validate_trace({"traceEvents": [], "displayTimeUnit": "s"})
        assert any("displayTimeUnit" in e for e in errors)
