"""Unit tests for the bounded event ring and event identity."""

import pytest

from repro.obs.events import DEFAULT_CAPACITY, BoundedEventLog, ObsEvent


class TestBoundedEventLog:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            BoundedEventLog(0)
        with pytest.raises(ValueError, match="capacity"):
            BoundedEventLog(-5)

    def test_under_capacity_keeps_everything(self):
        log = BoundedEventLog(8)
        for k in range(5):
            log.append(k)
        assert len(log) == 5
        assert log.dropped == 0
        assert list(log) == [0, 1, 2, 3, 4]

    def test_over_capacity_evicts_oldest_and_counts(self):
        log = BoundedEventLog(4)
        for k in range(10):
            log.append(k)
        assert len(log) == 4
        assert log.dropped == 6
        assert list(log) == [6, 7, 8, 9]  # newest window, oldest first

    def test_indexing_and_slicing(self):
        log = BoundedEventLog(4)
        for k in range(6):
            log.append(k)
        assert log[0] == 2
        assert log[-1] == 5
        assert log[1:3] == [3, 4]

    def test_snapshot_is_plain_list_copy(self):
        log = BoundedEventLog(3)
        log.append("a")
        snap = log.snapshot()
        assert snap == ["a"]
        snap.append("b")
        assert list(log) == ["a"]

    def test_clear_resets_contents_and_dropped(self):
        log = BoundedEventLog(2)
        for k in range(5):
            log.append(k)
        assert log.dropped == 3
        log.clear()
        assert len(log) == 0
        assert log.dropped == 0
        assert not log

    def test_default_capacity(self):
        assert BoundedEventLog().capacity == DEFAULT_CAPACITY


class TestObsEvent:
    def test_key_is_info_order_insensitive(self):
        a = ObsEvent(5, "aq", "lock", 1, 9, info={"x": 1, "y": 2})
        b = ObsEvent(5, "aq", "lock", 1, 9, info={"y": 2, "x": 1})
        assert a.key() == b.key()

    def test_key_distinguishes_fields(self):
        base = ObsEvent(5, "aq", "lock", 1, 9)
        assert base.key() != ObsEvent(6, "aq", "lock", 1, 9).key()
        assert base.key() != ObsEvent(5, "aq", "unlock", 1, 9).key()
        assert base.key() != ObsEvent(5, "aq", "lock", 2, 9).key()
        assert base.key() != ObsEvent(5, "aq", "lock", 1, 9, dur=3).key()

    def test_repr_mentions_category_and_kind(self):
        event = ObsEvent(7, "watchdog", "fire", 0, 3, info={"line": 64})
        text = repr(event)
        assert "watchdog/fire" in text and "line" in text
