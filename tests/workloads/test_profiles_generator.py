"""Tests for benchmark profiles and the workload generator."""

import pytest

from repro.common.errors import ConfigError
from repro.core.policy import FREE_ATOMICS_FWD
from repro.isa.interpreter import ReferenceInterpreter
from repro.system.simulator import run_workload
from repro.workloads.generator import WorkloadScale, generate_workload
from repro.workloads.profiles import (
    AI_THRESHOLD_APKI,
    ATOMIC_INTENSIVE,
    BENCHMARK_ORDER,
    PROFILES,
    SyncIdiom,
    profile,
)
from tests.conftest import small_system_config


class TestProfiles:
    def test_twenty_six_benchmarks(self):
        assert len(PROFILES) == 26
        assert len(BENCHMARK_ORDER) == 26

    def test_paper_atomic_intensive_set(self):
        # Paper 5.2: 11 applications are atomic-intensive.
        assert len(ATOMIC_INTENSIVE) == 11
        expected = {
            "TATP", "PC", "TPCC", "AS", "CQ", "RBT",
            "barnes", "volrend", "radiosity", "fluidanimate", "canneal",
        }
        assert set(ATOMIC_INTENSIVE) == expected

    def test_ai_threshold_matches_paper(self):
        assert AI_THRESHOLD_APKI == 0.75
        for name in ATOMIC_INTENSIVE:
            assert PROFILES[name].apki_target >= 0.75

    def test_idioms_match_paper_descriptions(self):
        assert PROFILES["AS"].sync is SyncIdiom.LOCK_PAIR
        assert PROFILES["TPCC"].sync is SyncIdiom.LOCK_LIST
        assert PROFILES["TPCC"].lock_list_range == (5, 15)
        assert PROFILES["canneal"].sync is SyncIdiom.RAW_ATOMIC
        assert PROFILES["CQ"].sync is SyncIdiom.QUEUE
        assert PROFILES["fluidanimate"].num_locks >= 256  # uncontended

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError, match="unknown benchmark"):
            profile("doom3")


class TestGenerator:
    def test_deterministic(self):
        scale = WorkloadScale(num_threads=2, instructions_per_thread=500)
        first = generate_workload("barnes", scale)
        second = generate_workload("barnes", scale)
        for p1, p2 in zip(first.programs, second.programs):
            assert p1.instructions == p2.instructions

    def test_threads_get_distinct_programs(self):
        scale = WorkloadScale(num_threads=3, instructions_per_thread=500)
        workload = generate_workload("radiosity", scale)
        assert workload.num_threads == 3
        # Different private bases at least.
        assert workload.programs[0].instructions != workload.programs[1].instructions

    def test_every_profile_generates_and_terminates_single_thread(self):
        # Functional check via the reference interpreter: every generated
        # single-thread program halts (barriers trivially pass at N=1).
        scale = WorkloadScale(num_threads=1, instructions_per_thread=400)
        for name in BENCHMARK_ORDER:
            workload = generate_workload(name, scale)
            interp = ReferenceInterpreter(
                workload.programs[0], max_steps=2_000_000, initial_regs={0: 0}
            )
            interp.run()
            assert interp.halted, name

    @pytest.mark.parametrize("name", ["AS", "TPCC", "CQ", "canneal", "watersp"])
    def test_profiles_run_on_simulator(self, name):
        scale = WorkloadScale(num_threads=2, instructions_per_thread=400)
        workload = generate_workload(name, scale)
        result = run_workload(
            workload,
            policy=FREE_ATOMICS_FWD,
            config=small_system_config(2, watchdog_cycles=400),
        )
        assert all(core.committed > 0 for core in result.cores)
        assert result.committed_atomics > 0

    def test_apki_orders_match_targets(self):
        # Higher-target profiles must measure higher APKI (coarse check
        # on two extremes; absolute calibration is documented).
        scale = WorkloadScale(num_threads=1, instructions_per_thread=2000)
        low = run_workload(
            generate_workload("watersp", scale), config=small_system_config(1)
        )
        high = run_workload(
            generate_workload("AS", scale), config=small_system_config(1)
        )
        assert high.apki > low.apki

    def test_meta_carries_profile(self):
        workload = generate_workload(
            "AS", WorkloadScale(num_threads=1, instructions_per_thread=400)
        )
        assert workload.meta["atomic_intensive"] is True
        assert workload.meta["profile"].name == "AS"
