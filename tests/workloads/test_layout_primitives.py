"""Tests for memory layout and synchronization primitives."""

import pytest

from repro.common.errors import ConfigError
from repro.core.policy import FREE_ATOMICS_FWD
from repro.isa.builder import ProgramBuilder
from repro.mem.lines import LINE_BYTES
from repro.system.simulator import run_workload
from repro.workloads.base import Workload
from repro.workloads.layout import AddressAllocator
from repro.workloads.primitives import (
    emit_barrier,
    emit_lock_index,
    emit_spinlock_acquire,
    emit_spinlock_release,
)
from tests.conftest import small_system_config


class TestAllocator:
    def test_regions_are_line_aligned_and_disjoint(self):
        alloc = AddressAllocator()
        a = alloc.region("a", 100)
        b = alloc.region("b", 1)
        assert a.base % LINE_BYTES == 0
        assert b.base % LINE_BYTES == 0
        assert b.base >= a.base + a.size_bytes

    def test_lines_region_slots(self):
        alloc = AddressAllocator()
        locks = alloc.lines_region("locks", 4)
        addresses = [locks.line_address(i) for i in range(4)]
        assert addresses == [locks.base + i * 64 for i in range(4)]

    def test_word_address_bounds(self):
        alloc = AddressAllocator()
        region = alloc.region("r", 64)
        with pytest.raises(ConfigError):
            region.word_address(region.num_words)

    def test_duplicate_region_rejected(self):
        alloc = AddressAllocator()
        alloc.region("a", 64)
        with pytest.raises(ConfigError):
            alloc.region("a", 64)

    def test_getitem_and_contains(self):
        alloc = AddressAllocator()
        alloc.region("a", 64)
        assert "a" in alloc and alloc["a"].name == "a"


class TestSpinlock:
    def test_mutual_exclusion(self):
        # N threads increment a plain (non-atomic) counter inside the
        # lock; without mutual exclusion updates would be lost.
        lock_addr, counter = 0x80000, 0x80040
        builder = ProgramBuilder()
        builder.li(1, lock_addr)
        builder.li(2, counter)
        builder.li(3, 0)
        builder.label("loop")
        emit_spinlock_acquire(builder, base_reg=1, tmp=4)
        builder.load(5, base=2)
        builder.addi(5, 5, 1)
        builder.store(src=5, base=2)
        emit_spinlock_release(builder, base_reg=1, tmp=6)
        builder.addi(3, 3, 1)
        builder.branch_lt(3, 15, "loop")
        workload = Workload("mutex", [builder.build()] * 3)
        result = run_workload(
            workload,
            policy=FREE_ATOMICS_FWD,
            config=small_system_config(3, watchdog_cycles=400),
        )
        assert result.read_word(counter) == 45
        assert result.read_word(lock_addr) == 0  # released

    def test_lock_index_is_line_strided_and_bounded(self):
        builder = ProgramBuilder()
        builder.li(7, 13)  # pretend loop counter
        emit_lock_index(builder, dst=8, counter_reg=7, salt=5, num_locks=16)
        builder.li(1, 0x90000)
        builder.store(src=8, base=1)
        result = run_workload(
            Workload("idx", [builder.build()]), config=small_system_config(1)
        )
        value = result.read_word(0x90000)
        assert value % 64 == 0
        assert 0 <= value < 16 * 64

    def test_lock_index_requires_power_of_two(self):
        with pytest.raises(ValueError):
            emit_lock_index(ProgramBuilder(), 1, 2, 0, num_locks=10)


class TestBarrier:
    def test_barrier_synchronizes(self):
        # Before the barrier each thread stores a flag; after it, each
        # thread reads every other thread's flag — all must be visible.
        threads = 3
        counter_addr, gen_addr = 0xA0000, 0xA0040
        flags, out = 0xA1000, 0xA2000
        programs = []
        for thread in range(threads):
            builder = ProgramBuilder()
            builder.li(5, counter_addr)
            builder.li(6, gen_addr)
            builder.li(1, flags + thread * 0x40)
            builder.store(imm=1, base=1)
            emit_barrier(builder, 5, 6, threads, 10, 11, 12)
            builder.li(2, 0)  # sum the other threads' flags
            for other in range(threads):
                builder.li(3, flags + other * 0x40)
                builder.load(4, base=3)
                builder.add(2, 2, 4)
            builder.li(3, out + thread * 0x40)
            builder.store(src=2, base=3)
            programs.append(builder.build())
        result = run_workload(
            Workload("barrier", programs),
            policy=FREE_ATOMICS_FWD,
            config=small_system_config(threads, watchdog_cycles=400),
        )
        for thread in range(threads):
            assert result.read_word(out + thread * 0x40) == threads

    def test_barrier_reusable(self):
        # Two consecutive barrier episodes must not hang or miscount.
        threads = 2
        counter_addr, gen_addr = 0xB0000, 0xB0040
        programs = []
        for _ in range(threads):
            builder = ProgramBuilder()
            builder.li(5, counter_addr)
            builder.li(6, gen_addr)
            for _ in range(2):
                emit_barrier(builder, 5, 6, threads, 10, 11, 12)
            programs.append(builder.build())
        result = run_workload(
            Workload("barrier2", programs),
            policy=FREE_ATOMICS_FWD,
            config=small_system_config(threads, watchdog_cycles=400),
        )
        assert result.read_word(counter_addr) == 0
        assert result.read_word(gen_addr) == 2
