"""Microbenchmark kernels: functional correctness under every policy."""

import pytest

from repro.core.policy import ALL_POLICIES, BASELINE, FREE_ATOMICS_FWD
from repro.system.simulator import run_workload
from repro.workloads.microbench import (
    MICROBENCHMARKS,
    false_sharing,
    producer_consumer,
    shared_counter,
    ticket_lock,
    uncontended_locks,
)
from tests.conftest import small_system_config


def run(micro, policy, threads):
    result = run_workload(
        micro.workload,
        policy=policy,
        config=small_system_config(threads, watchdog_cycles=400),
    )
    micro.check(result)
    return result


@pytest.mark.parametrize("name", sorted(MICROBENCHMARKS), ids=str)
@pytest.mark.parametrize(
    "policy", [BASELINE, FREE_ATOMICS_FWD], ids=lambda p: p.name
)
def test_all_microbenchmarks_correct(name, policy):
    micro = MICROBENCHMARKS[name]()
    run(micro, policy, micro.workload.num_threads)


class TestTicketLock:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.name)
    def test_fairness_preserves_count(self, policy):
        micro = ticket_lock(threads=3, iterations=10)
        run(micro, policy, 3)


class TestProducerConsumer:
    def test_checksum_exact(self):
        micro = producer_consumer(items=20)
        result = run(micro, FREE_ATOMICS_FWD, 2)
        assert result.cycles > 0


class TestFalseSharing:
    def test_same_line_different_words(self):
        micro = false_sharing(threads=4, iterations=25)
        result = run(micro, FREE_ATOMICS_FWD, 4)
        # Multiple atomics locked the same line concurrently at least
        # sometimes; whatever happened, counts are exact (Implication 2).
        assert result.committed_atomics == 4 * 25


class TestLockLocalityContrast:
    def test_uncontended_beats_contended_per_atomic(self):
        contended = run(shared_counter(threads=4, iterations=25), BASELINE, 4)
        private = run(uncontended_locks(threads=4, iterations=25), BASELINE, 4)
        # Contended single-line traffic invalidates across cores.
        assert (
            contended.stats.aggregate("invalidations")
            > private.stats.aggregate("invalidations")
        )
