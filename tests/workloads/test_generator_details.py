"""Detailed generator behaviour: calibration, knobs, and idiom structure."""

import dataclasses

from repro.isa.instructions import AtomicKind, AtomicRMW, Fence, Store
from repro.workloads.generator import (
    WorkloadScale,
    _work_length,
    generate_workload,
)
from repro.workloads.profiles import PROFILES, profile

SCALE = WorkloadScale(num_threads=2, instructions_per_thread=800)


def static_instrs(name, **profile_overrides):
    prof = profile(name)
    if profile_overrides:
        prof = dataclasses.replace(prof, **profile_overrides)
    workload = generate_workload(prof, SCALE)
    return list(workload.programs[0])


class TestCalibration:
    def test_higher_apki_means_less_work(self):
        dense = _work_length(PROFILES["AS"])
        sparse = _work_length(PROFILES["watersp"])
        assert dense < sparse

    def test_work_length_bounds(self):
        for prof in PROFILES.values():
            length = _work_length(prof)
            assert 4 <= length <= 2000, prof.name


class TestKnobs:
    def test_atomic_release_doubles_lock_atomics(self):
        with_rmw = sum(
            1 for i in static_instrs("barnes", fence_chance=0.0, alias_chance=0.0)
            if isinstance(i, AtomicRMW)
        )
        with_store = sum(
            1
            for i in static_instrs(
                "barnes", atomic_release=False, fence_chance=0.0, alias_chance=0.0
            )
            if isinstance(i, AtomicRMW)
        )
        assert with_rmw > with_store

    def test_fence_chance_emits_fences(self):
        fenced = static_instrs("AS", fence_chance=1.0)
        assert any(isinstance(i, Fence) for i in fenced)
        unfenced = static_instrs("AS", fence_chance=0.0)
        assert not any(isinstance(i, Fence) for i in unfenced)

    def test_alias_chance_emits_hazards(self):
        hazardous = static_instrs("watersp", alias_chance=1.0)
        plain = static_instrs("watersp", alias_chance=0.0)
        assert len(hazardous) > len(plain)

    def test_release_kind_matches_profile(self):
        instrs = static_instrs("fluidanimate")  # atomic_release=True
        kinds = {i.kind for i in instrs if isinstance(i, AtomicRMW)}
        assert AtomicKind.EXCHANGE in kinds  # the unlock
        assert AtomicKind.TEST_AND_SET in kinds  # the acquire

    def test_plain_release_profiles_store_zero(self):
        instrs = static_instrs("swaptions")  # atomic_release=False
        zero_stores = [
            i for i in instrs if isinstance(i, Store) and i.imm == 0
        ]
        assert zero_stores  # the unlock store


class TestDeterminismAcrossSeeds:
    def test_different_seeds_differ(self):
        a = generate_workload("TPCC", WorkloadScale(2, 800, seed=1))
        b = generate_workload("TPCC", WorkloadScale(2, 800, seed=2))
        assert a.programs[0].instructions != b.programs[0].instructions

    def test_scale_reflected_in_meta(self):
        workload = generate_workload("TPCC", SCALE)
        assert workload.meta["scale"] is SCALE
