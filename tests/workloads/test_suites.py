"""Tests for suite groupings."""

import pytest

from repro.common.errors import ConfigError
from repro.workloads.profiles import BENCHMARK_ORDER
from repro.workloads.suites import (
    SUITES,
    benchmarks_in,
    per_suite_geomean,
    suite_of,
)


class TestSuites:
    def test_partition_is_complete_and_disjoint(self):
        all_names = [name for names in SUITES.values() for name in names]
        assert sorted(all_names) == sorted(BENCHMARK_ORDER)
        assert len(all_names) == len(set(all_names))

    def test_paper_memberships(self):
        assert "barnes" in SUITES["splash3"]
        assert "canneal" in SUITES["parsec"]
        assert set(SUITES["write-intensive"]) == {
            "TATP", "PC", "TPCC", "AS", "CQ", "RBT",
        }

    def test_suite_of(self):
        assert suite_of("fft") == "splash3"
        with pytest.raises(ConfigError):
            suite_of("quake")

    def test_benchmarks_in_validates(self):
        assert benchmarks_in("parsec")
        with pytest.raises(ConfigError):
            benchmarks_in("spec2017")


class TestGeomean:
    def test_per_suite_geomean(self):
        values = {name: 2.0 for name in BENCHMARK_ORDER}
        means = per_suite_geomean(values)
        for suite in SUITES:
            assert means[suite] == pytest.approx(2.0)

    def test_partial_values_ok(self):
        means = per_suite_geomean({"AS": 4.0, "TPCC": 1.0})
        assert means["write-intensive"] == pytest.approx(2.0)
        assert means["splash3"] == 0.0
