"""In-process ServeApp tests: routing, validation, backpressure.

These boot the real app (real socket, real worker pool) inside the
test's event loop, which makes daemon-internal state (queue depth,
metrics) directly observable — that's what lets the 429 test fill the
queue deterministically with ``runners=0`` (no job runner ever drains).
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.app import ServeApp, ServeConfig


def _raw_request(method: str, path: str, body=None) -> bytes:
    payload = json.dumps(body).encode("utf-8") if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: test\r\nContent-Length: {len(payload)}\r\n\r\n"
    )
    return head.encode("latin-1") + payload


async def _request(port: int, method: str, path: str, body=None):
    """(status, headers, json-decoded body) over one raw connection."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(_raw_request(method, path, body))
        await writer.drain()
        data = await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()
    head, _, payload = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(payload) if payload else None


def _app(**overrides) -> ServeApp:
    defaults = dict(port=0, jobs=1, queue_size=2, runners=0)
    defaults.update(overrides)
    return ServeApp(ServeConfig(**defaults))


class TestRouting:
    def test_probe_and_error_routes(self):
        async def scenario():
            app = _app()
            assert not app.ready
            await app.start()
            try:
                assert app.ready
                status, _, body = await _request(app.port, "GET", "/healthz")
                assert (status, body) == (200, {"status": "ok"})
                status, _, body = await _request(app.port, "GET", "/readyz")
                assert (status, body) == (200, {"status": "ready"})
                status, _, body = await _request(app.port, "GET", "/metrics")
                assert status == 200
                assert body["worker_restarts"] == 0
                assert body["queue_depth"] == 0
                assert body["worker_pids"]
                status, _, _ = await _request(app.port, "GET", "/nope")
                assert status == 404
                status, _, _ = await _request(app.port, "DELETE", "/healthz")
                assert status == 404
                status, _, body = await _request(
                    app.port, "POST", "/v1/sweep", {"benchmarks": ["nope"]}
                )
                assert status == 400
                assert any("nope" in e for e in body["errors"])
                status, _, _ = await _request(
                    app.port, "GET", "/v1/result/zz"
                )
                assert status == 400  # malformed key
                status, _, _ = await _request(
                    app.port, "GET", f"/v1/result/{'0' * 64}"
                )
                assert status == 404  # well-formed but absent
                assert app.metrics.requests_invalid == 5
            finally:
                await app.stop()
            assert not app.ready

        asyncio.run(scenario())

    def test_bad_json_body(self):
        async def scenario():
            app = _app()
            await app.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", app.port
                )
                raw = b"not json"
                writer.write(
                    b"POST /v1/sweep HTTP/1.1\r\nHost: t\r\n"
                    + f"Content-Length: {len(raw)}\r\n\r\n".encode()
                    + raw
                )
                await writer.drain()
                data = await reader.read()
                writer.close()
                await writer.wait_closed()
                assert b"400" in data.split(b"\r\n", 1)[0]
            finally:
                await app.stop()

        asyncio.run(scenario())


class TestBackpressure:
    def test_full_queue_yields_429_with_retry_after(self):
        async def scenario():
            # runners=0: nothing ever drains the queue, so two admitted
            # sweeps fill it and the third must bounce.
            app = _app(queue_size=2, runners=0)
            await app.start()
            parked = []
            try:
                for _ in range(2):
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", app.port
                    )
                    writer.write(_raw_request("POST", "/v1/sweep", {}))
                    await writer.drain()
                    parked.append((reader, writer))
                for _ in range(200):
                    if app.queue.depth == 2:
                        break
                    await asyncio.sleep(0.01)
                assert app.queue.depth == 2
                status, headers, body = await _request(
                    app.port, "POST", "/v1/sweep", {}
                )
                assert status == 429
                assert int(headers["retry-after"]) >= 1
                assert body["retry_after"] == int(headers["retry-after"])
                assert app.metrics.requests_rejected == 1
            finally:
                for _reader, writer in parked:
                    writer.close()
                await app.stop()

        asyncio.run(scenario())
