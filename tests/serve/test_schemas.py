"""Request-schema validation for the sweep daemon."""

from __future__ import annotations

import pytest

from repro.analysis.runner import ExperimentScale
from repro.core.policy import policy_names
from repro.serve.schemas import (
    MAX_FUZZ_TESTS,
    MAX_POINTS_PER_SWEEP,
    MAX_THREADS,
    SchemaError,
    parse_fuzz,
    parse_litmus,
    parse_sweep,
)
from repro.workloads.profiles import BENCHMARK_ORDER


class TestParseSweep:
    def test_minimal_payload_gets_defaults(self):
        request = parse_sweep({})
        assert request.benchmarks == tuple(BENCHMARK_ORDER[:1])
        assert request.scale == ExperimentScale()
        assert request.preset == "icelake"

    def test_full_payload(self):
        request = parse_sweep(
            {
                "benchmarks": ["AS", "watersp"],
                "policies": ["baseline", "free+fwd"],
                "threads": 4,
                "instrs": 500,
                "seed": 7,
                "watchdog": 1000,
                "aq": 2,
                "fwd_chain": 8,
                "preset": "skylake",
            }
        )
        assert request.benchmarks == ("AS", "watersp")
        assert request.policies == ("baseline", "free+fwd")
        assert request.scale == ExperimentScale(4, 500, 7, 1000, 2, 8)
        assert len(request.points()) == 4

    def test_points_cross_product(self):
        request = parse_sweep(
            {"benchmarks": ["AS"], "policies": ["baseline", "free+fwd"]}
        )
        points = request.points()
        assert [(p[0], p[1]) for p in points] == [
            ("AS", "baseline"),
            ("AS", "free+fwd"),
        ]

    def test_collects_every_error(self):
        with pytest.raises(SchemaError) as excinfo:
            parse_sweep(
                {"benchmarks": ["nope"], "threads": 0, "mystery": 1}
            )
        errors = "\n".join(excinfo.value.errors)
        assert "nope" in errors
        assert "threads" in errors
        assert "mystery" in errors
        assert len(excinfo.value.errors) == 3

    def test_rejects_non_object(self):
        with pytest.raises(SchemaError):
            parse_sweep([1, 2, 3])

    def test_rejects_bool_as_int(self):
        with pytest.raises(SchemaError, match="threads"):
            parse_sweep({"threads": True})

    def test_rejects_oversized_thread_count(self):
        with pytest.raises(SchemaError, match="threads"):
            parse_sweep({"threads": MAX_THREADS + 1})

    def test_rejects_empty_benchmarks(self):
        with pytest.raises(SchemaError, match="must not be empty"):
            parse_sweep({"benchmarks": []})

    def test_rejects_too_many_points(self):
        benchmarks = list(BENCHMARK_ORDER)
        policies = list(policy_names())
        assert len(benchmarks) * len(policies) > MAX_POINTS_PER_SWEEP
        with pytest.raises(SchemaError, match="sweep too large"):
            parse_sweep({"benchmarks": benchmarks, "policies": policies})

    def test_deduplicates_names(self):
        request = parse_sweep({"benchmarks": ["AS", "AS"]})
        assert request.benchmarks == ("AS",)


class TestParseLitmus:
    def test_defaults(self):
        request = parse_litmus({"test": "atomic_increment"})
        assert request.policy == "free+fwd"
        assert len(request.pads) == 4  # atomic_increment is 4-threaded

    def test_unknown_test(self):
        with pytest.raises(SchemaError, match="test"):
            parse_litmus({"test": "not_a_test"})

    def test_pads_length_must_match_threads(self):
        with pytest.raises(SchemaError, match="pads"):
            parse_litmus({"test": "atomic_increment", "pads": [1, 2]})

    def test_pads_bounds(self):
        with pytest.raises(SchemaError, match="pads"):
            parse_litmus({"test": "dekker_atomics", "pads": [0, 1000]})

    def test_valid_pads(self):
        request = parse_litmus(
            {"test": "dekker_atomics", "pads": [3, 9], "policy": "baseline"}
        )
        assert request.pads == (3, 9)


class TestParseFuzz:
    def test_defaults(self):
        request = parse_fuzz({})
        assert request.tests == 10
        assert request.policies == policy_names()
        assert request.fenced_baseline is True

    def test_bounds(self):
        with pytest.raises(SchemaError, match="tests"):
            parse_fuzz({"tests": MAX_FUZZ_TESTS + 1})

    def test_fenced_must_be_bool(self):
        with pytest.raises(SchemaError, match="fenced_baseline"):
            parse_fuzz({"fenced_baseline": "yes"})

    def test_policy_subset(self):
        request = parse_fuzz({"policies": ["baseline"], "tests": 3})
        assert request.policies == ("baseline",)
