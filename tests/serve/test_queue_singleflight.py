"""Unit tests for the job queue and the in-daemon single-flight."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.metrics import ServeMetrics
from repro.serve.queue import Job, JobQueue, QueueFullError
from repro.serve.schemas import parse_sweep
from repro.serve.singleflight import SingleFlight


def _job() -> Job:
    return Job(kind="sweep", request=parse_sweep({}))


class TestJobQueue:
    def test_bounded_admission(self):
        queue = JobQueue(2)
        queue.submit(_job())
        queue.submit(_job())
        assert queue.depth == 2
        with pytest.raises(QueueFullError) as excinfo:
            queue.submit(_job(), retry_after=7)
        assert excinfo.value.retry_after == 7
        assert excinfo.value.depth == 2

    def test_fifo_drain(self):
        async def scenario():
            queue = JobQueue(4)
            first, second = _job(), _job()
            queue.submit(first)
            queue.submit(second)
            assert (await queue.get()) is first
            assert (await queue.get()) is second
            assert queue.depth == 0

        asyncio.run(scenario())

    def test_rejects_silly_size(self):
        with pytest.raises(ValueError):
            JobQueue(0)

    def test_job_ids_are_unique(self):
        assert _job().id != _job().id


class TestRetryAfterEstimate:
    def test_defaults_without_history(self):
        metrics = ServeMetrics()
        assert metrics.retry_after(queue_depth=3) == 6  # 3 x 2s fallback

    def test_uses_job_time_ema(self):
        metrics = ServeMetrics()
        metrics.record_job_seconds(10.0)
        assert metrics.retry_after(queue_depth=2) == 20

    def test_never_zero(self):
        metrics = ServeMetrics()
        metrics.record_job_seconds(0.001)
        assert metrics.retry_after(queue_depth=1) == 1


class TestSingleFlight:
    def test_concurrent_callers_dedupe(self):
        async def scenario():
            flights = SingleFlight()
            computed = []
            release = asyncio.Event()

            async def compute():
                computed.append(1)
                await release.wait()
                return "value"

            async def call():
                return await flights.run("key", compute)

            tasks = [asyncio.create_task(call()) for _ in range(5)]
            await asyncio.sleep(0)  # let every task reach the flight
            assert flights.inflight == 1
            release.set()
            results = await asyncio.gather(*tasks)
            assert len(computed) == 1
            assert [value for value, _ in results] == ["value"] * 5
            assert sum(leader for _, leader in results) == 1
            assert flights.inflight == 0

        asyncio.run(scenario())

    def test_distinct_keys_fly_separately(self):
        async def scenario():
            flights = SingleFlight()
            counts = {"a": 0, "b": 0}

            async def make(key):
                async def compute():
                    counts[key] += 1
                    return key

                return await flights.run(key, compute)

            results = await asyncio.gather(make("a"), make("b"))
            assert counts == {"a": 1, "b": 1}
            assert all(leader for _, leader in results)

        asyncio.run(scenario())

    def test_exception_broadcast_to_followers(self):
        async def scenario():
            flights = SingleFlight()
            release = asyncio.Event()

            async def compute():
                await release.wait()
                raise RuntimeError("boom")

            leader = asyncio.create_task(flights.run("key", compute))
            await asyncio.sleep(0)
            follower = asyncio.create_task(flights.run("key", compute))
            await asyncio.sleep(0)
            release.set()
            for task in (leader, follower):
                with pytest.raises(RuntimeError, match="boom"):
                    await task
            assert flights.inflight == 0  # key released for a retry

        asyncio.run(scenario())

    def test_sequential_calls_recompute(self):
        async def scenario():
            flights = SingleFlight()
            computed = []

            async def compute():
                computed.append(1)
                return len(computed)

            first, first_leader = await flights.run("key", compute)
            second, second_leader = await flights.run("key", compute)
            # No caching here — that's the ResultCache's job.
            assert (first, second) == (1, 2)
            assert first_leader and second_leader

        asyncio.run(scenario())
