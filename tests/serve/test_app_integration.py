"""End-to-end daemon tests: a real ``python -m repro.serve`` subprocess.

One module-scoped daemon serves every test here (boot costs ~2s); it
gets its own cache directory so cold/warm behaviour is deterministic,
and the teardown asserts a clean SIGTERM exit.  The heavier concurrency
demos (single-flight under racing clients, SIGKILLed workers) live in
``scripts/serve_smoke.py``, which CI runs as its own job.
"""

from __future__ import annotations

import http.client
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
SWEEP = {
    "benchmarks": ["AS"],
    "policies": ["free+fwd"],
    "threads": 2,
    "instrs": 150,
    "seed": 90001,  # this module's private cold point
}


class Daemon:
    def __init__(self, proc: subprocess.Popen, port: int) -> None:
        self.proc = proc
        self.port = port

    def get(self, path: str):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=60)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return response.status, json.loads(response.read().decode())
        finally:
            conn.close()

    def post(self, path: str, payload: dict):
        """(status, decoded-events-list) — handles chunked NDJSON too."""
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=180)
        try:
            conn.request(
                "POST",
                path,
                body=json.dumps(payload),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = response.read().decode()
            events = [json.loads(line) for line in body.splitlines() if line]
            return response.status, events
        finally:
            conn.close()


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    env = dict(
        os.environ,
        REPRO_CACHE_DIR=str(tmp_path_factory.mktemp("serve-cache")),
    )
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO / "src"), env.get("PYTHONPATH")) if p
    )
    env.pop("REPRO_CACHE", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0", "--jobs", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    port = None
    deadline = time.monotonic() + 60
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        assert line, "daemon exited before listening"
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1].split()[0])
            break
    assert port is not None, "daemon never printed its listen line"
    daemon = Daemon(proc, port)
    yield daemon
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30) == 0, "daemon did not exit 0 on SIGTERM"


def test_probes(daemon):
    assert daemon.get("/healthz") == (200, {"status": "ok"})
    assert daemon.get("/readyz") == (200, {"status": "ready"})


def test_sweep_cold_then_warm(daemon):
    status, events = daemon.post("/v1/sweep", SWEEP)
    assert status == 200
    done = events[-1]
    assert done["event"] == "done" and done["ok"]
    assert done["simulated"] + done["from_cache"] == 1
    point = events[0]
    assert point["event"] == "point"
    assert point["benchmark"] == "AS" and point["cycles"] > 0

    # Warm replay: pure cache, never touches the pool, fast.
    started = time.monotonic()
    status, events = daemon.post("/v1/sweep", SWEEP)
    elapsed = time.monotonic() - started
    assert status == 200
    assert events[0]["source"] == "cache"
    assert events[-1]["from_cache"] == 1
    assert elapsed < 1.0  # generous CI bound; smoke asserts the 100ms SLO

    # The point's content key resolves to the full stored summary.
    status, payload = daemon.get(f"/v1/result/{events[0]['key']}")
    assert status == 200
    assert payload["policy_name"] == "free+fwd"
    assert payload["cycles"] == events[0]["cycles"]


def test_metrics_reflect_the_sweeps(daemon):
    status, metrics = daemon.get("/metrics")
    assert status == 200
    assert metrics["cache_hits"] >= 1
    assert metrics["points_completed"] >= 2
    assert metrics["jobs_completed"] >= 2
    assert metrics["worker_pids"]
    assert set(metrics["health"]) == {"watchdog_timeouts", "squashes"}


def test_litmus_endpoint(daemon):
    status, events = daemon.post(
        "/v1/litmus",
        {"test": "atomic_increment", "policy": "free+fwd"},
    )
    assert status == 200
    (result,) = events
    assert result["ok"] and not result["forbidden"]
    assert result["observations"]["counter"] == 96  # 4 threads x 24 adds


def test_fuzz_endpoint(daemon):
    status, events = daemon.post(
        "/v1/fuzz",
        {"tests": 1, "seed": 3, "policies": ["free+fwd"], "fenced_baseline": False},
    )
    assert status == 200
    (report,) = events
    assert report["ok"] is True
    assert report["num_violations"] == 0
    assert report["columns"] == ["free+fwd"]


def test_schema_rejection(daemon):
    status, events = daemon.post("/v1/sweep", {"threads": -1})
    assert status == 400
    assert any("threads" in error for error in events[0]["errors"])
