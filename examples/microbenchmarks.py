#!/usr/bin/env python3
"""Tour of the microbenchmark kernels across all four atomic designs.

Each kernel isolates one mechanism: maximal contention (shared_counter),
FIFO fairness (ticket_lock), TSO message passing (producer_consumer),
same-line multi-locking (false_sharing), pure lock locality
(uncontended_locks), and quiescent-time accounting (barrier_storm).
Every kernel carries a functional check, so this doubles as a smoke
test that unfencing atomics never costs correctness.

Run:  python examples/microbenchmarks.py
"""

from repro import ALL_POLICIES, BASELINE, icelake_config, run_workload
from repro.workloads.microbench import MICROBENCHMARKS


def main() -> None:
    names = sorted(MICROBENCHMARKS)
    header = f"{'kernel':18s}" + "".join(f"{p.name:>15s}" for p in ALL_POLICIES)
    print(header)
    print("-" * len(header))
    for name in names:
        micro = MICROBENCHMARKS[name]()
        threads = micro.workload.num_threads
        config = icelake_config(num_cores=threads)
        cells = []
        baseline_cycles = None
        for policy in ALL_POLICIES:
            result = run_workload(micro.workload, policy=policy, config=config)
            micro.check(result)  # functional outcome must be exact
            if policy is BASELINE:
                baseline_cycles = result.cycles
            cells.append(
                f"{result.cycles:8d}({baseline_cycles / result.cycles:4.2f}x)"
            )
        print(f"{name:18s}" + "".join(f"{c:>15s}" for c in cells))
    print("\nAll functional checks passed under every design.")


if __name__ == "__main__":
    main()
