#!/usr/bin/env python3
"""AS-style lock contention: the paper's best case, plus its dark side.

The AS benchmark's hotspot "selects two random data entries, locks both
entries, swaps their values and unlocks" (paper section 5.5).  This
example generates that workload via the benchmark profiles and shows:

1. the >40%-class speedup Free atomics deliver on it, and
2. the hardware RMW-RMW deadlocks that speculative cross-order lock
   acquisition creates (Figure 5), counted via watchdog timeouts —
   including how the timeout threshold trades detection latency against
   false squashes.

Run:  python examples/lock_contention.py
"""

import dataclasses

from repro import ALL_POLICIES, BASELINE, FREE_ATOMICS_FWD, icelake_config, run_workload
from repro.workloads.generator import WorkloadScale, generate_workload

THREADS = 4


def config_with_watchdog(cycles: int):
    config = icelake_config(num_cores=THREADS)
    return config.replace(
        free_atomics=dataclasses.replace(
            config.free_atomics, watchdog_cycles=cycles
        )
    )


def main() -> None:
    scale = WorkloadScale(num_threads=THREADS, instructions_per_thread=2000, seed=7)
    workload = generate_workload("AS", scale)
    print("AS profile: lock two random entries, swap, unlock "
          f"({THREADS} threads)\n")

    print("-- four designs (watchdog = 2000 cycles) " + "-" * 20)
    config = config_with_watchdog(2000)
    baseline_cycles = None
    for policy in ALL_POLICIES:
        result = run_workload(workload, policy=policy, config=config)
        if policy is BASELINE:
            baseline_cycles = result.cycles
        print(
            f"{policy.name:14s} cycles={result.cycles:7d} "
            f"speedup={baseline_cycles / result.cycles:5.2f}x "
            f"timeouts={result.timeouts:3d} "
            f"squashes={result.squashes:4d} apki={result.apki:5.2f}"
        )

    print("\n-- watchdog threshold sweep (free+fwd) " + "-" * 22)
    print("Cross-order speculative lock acquisition deadlocks (Fig. 5)")
    print("are broken by the watchdog; its threshold is pure detection")
    print("latency, so at short run lengths a huge threshold hurts:")
    for threshold in (500, 2000, 10_000):
        result = run_workload(
            workload,
            policy=FREE_ATOMICS_FWD,
            config=config_with_watchdog(threshold),
        )
        print(
            f"  threshold={threshold:6d}  cycles={result.cycles:7d}  "
            f"timeouts={result.timeouts:3d}"
        )


if __name__ == "__main__":
    main()
