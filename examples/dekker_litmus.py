#!/usr/bin/env python3
"""The paper's Figure 10: Dekker's algorithm with atomic RMWs as barriers.

Two threads each store a flag, execute an atomic RMW (on an unrelated
address!), then read the other thread's flag.  Under x86-TSO a plain
store/load pair may reorder (both threads can read 0 — store buffering),
but the atomic RMW between them must forbid that: Free atomics keep this
guarantee *without* fences (type-1 atomicity, section 3.4).

This example sweeps timing paddings under all four designs and tallies
outcomes — plus a plain store-buffering control showing the simulator
really is TSO (the relaxed 0/0 outcome does appear without atomics).

Run:  python examples/dekker_litmus.py
"""

from collections import Counter

from repro import ALL_POLICIES
from repro.consistency.litmus import LITMUS_TESTS, run_litmus

PADS = (0, 2, 4, 7, 11)


def sweep(test_name: str) -> Counter:
    test = LITMUS_TESTS[test_name]
    outcomes: Counter = Counter()
    for policy in ALL_POLICIES:
        for pad0 in PADS:
            for pad1 in PADS:
                observations = run_litmus(test, policy, [pad0, pad1])
                key = tuple(sorted(observations.items()))
                outcomes[key] += 1
    return outcomes


def show(title: str, outcomes: Counter) -> None:
    print(f"\n{title}")
    for key, count in sorted(outcomes.items(), key=lambda kv: -kv[1]):
        pretty = ", ".join(f"{label}={value}" for label, value in key)
        print(f"  {count:4d}x  {pretty}")


def main() -> None:
    dekker = sweep("dekker_atomics")
    show("Dekker with atomic RMWs (Figure 10) — 0/0 must NEVER appear:", dekker)
    forbidden = dekker[(("r0", 0), ("r1", 0))]
    assert forbidden == 0, "type-1 atomicity violated!"
    print("  -> forbidden outcome count: 0  (atomics act as barriers)")

    control = sweep("store_buffering")
    show("Control: plain stores (no atomic) — TSO ALLOWS 0/0:", control)
    relaxed = control[(("r0", 0), ("r1", 0))]
    print(f"  -> relaxed 0/0 outcome seen {relaxed}x: the model is TSO, not SC")


if __name__ == "__main__":
    main()
