#!/usr/bin/env python3
"""Figure 1's core claim: fenced atomics get MORE expensive as the
reorder buffer grows (more in-flight stores to drain before each atomic
can even issue), while Free atomics' cost stays flat.

Sweeps the ROB from Sandy-Bridge-ish (168) through Skylake (224) to
Icelake (352) on a store-heavy mutex workload, and prints per-atomic
Drain_SB / Atomic cycle components for the baseline plus the free+fwd
execution time.

Run:  python examples/rob_sweep.py
"""

import dataclasses

from repro import BASELINE, FREE_ATOMICS_FWD, icelake_config, run_workload
from repro.workloads.generator import WorkloadScale, generate_workload

THREADS = 4
ROBS = (168, 224, 352)


def config_with_rob(rob: int):
    config = icelake_config(num_cores=THREADS)
    core = dataclasses.replace(
        config.core,
        rob_entries=rob,
        lq_entries=min(128, rob // 2),
        sq_entries=min(72, rob // 3),
    )
    return config.replace(core=core)


def main() -> None:
    scale = WorkloadScale(num_threads=THREADS, instructions_per_thread=2000, seed=3)
    workload = generate_workload("radix", scale)  # store-heavy profile
    print("ROB size vs the cost of fenced atomic RMWs (radix profile)\n")
    print(f"{'ROB':>5} {'Drain_SB':>9} {'Atomic':>8} {'base cycles':>12} "
          f"{'free+fwd':>9} {'speedup':>8}")
    for rob in ROBS:
        config = config_with_rob(rob)
        base = run_workload(workload, policy=BASELINE, config=config)
        free = run_workload(workload, policy=FREE_ATOMICS_FWD, config=config)
        drain = base.stats.aggregate_histogram("atomic_drain_sb").mean
        block = base.stats.aggregate_histogram("atomic_block").mean
        print(
            f"{rob:5d} {drain:9.1f} {block:8.1f} {base.cycles:12d} "
            f"{free.cycles:9d} {base.cycles / free.cycles:7.2f}x"
        )
    print("\nThe Drain_SB component grows with the ROB (paper Figure 1);")
    print("Free atomics never wait for the store buffer at issue.")


if __name__ == "__main__":
    main()
