#!/usr/bin/env python3
"""Quickstart: fenced vs Free atomics on a contended shared counter.

Builds a tiny program in the bundled ISA (four threads hammering one
fetch_add counter), runs it under all four designs the paper evaluates,
and prints cycles, speedup, and the fence/forwarding statistics that
explain the difference.

Run:  python examples/quickstart.py
"""

from repro import (
    ALL_POLICIES,
    BASELINE,
    ProgramBuilder,
    Workload,
    icelake_config,
    run_workload,
)

COUNTER = 0x1_0000
THREADS = 4
ITERATIONS = 100


def build_workload() -> Workload:
    builder = ProgramBuilder("counter")
    builder.li(1, COUNTER)  # r1 = &counter
    builder.li(2, 0)  # r2 = i
    builder.label("loop")
    builder.fetch_add(dst=3, base=1, imm=1)  # r3 = counter++
    builder.addi(2, 2, 1)
    builder.branch_lt(2, ITERATIONS, "loop")
    return Workload("quickstart", [builder.build()] * THREADS)


def main() -> None:
    workload = build_workload()
    config = icelake_config(num_cores=THREADS)
    print(f"{THREADS} threads x {ITERATIONS} fetch_adds on one cacheline\n")
    baseline_cycles = None
    for policy in ALL_POLICIES:
        result = run_workload(workload, policy=policy, config=config)
        if policy is BASELINE:
            baseline_cycles = result.cycles
        counter = result.read_word(COUNTER)
        assert counter == THREADS * ITERATIONS, "atomicity violated?!"
        speedup = baseline_cycles / result.cycles
        forwarded = result.stats.aggregate("atomics_fwd_from_atomic")
        omitted = result.stats.aggregate("fences_omitted")
        print(
            f"{policy.name:14s} cycles={result.cycles:7d}  "
            f"speedup={speedup:5.2f}x  counter={counter}  "
            f"fences omitted={omitted:4d}  atomics forwarded={forwarded:4d}"
        )
    print("\nThe counter is exact under every design: Free atomics remove")
    print("the fences, not the atomicity (paper sections 3.2-3.4).")


if __name__ == "__main__":
    main()
